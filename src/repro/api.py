"""Top-level public API: one coherent experiment surface.

:class:`Experiment` is the single entry point — a keyword-only builder
naming a workload (``pingpong``/``overlap``/``hicma``), a backend
(:class:`BackendKind` or its string value, accepted uniformly), a node
count, a seed, an optional fault plan, and workload-specific parameters.
``.run()`` returns a typed frozen result dataclass
(:class:`PingPongResult`/:class:`OverlapResult`/:class:`HicmaResult`).

The historical one-call helpers (``run_pingpong``/``run_overlap``/
``run_hicma``/``quick_compare``) remain as thin shims that emit
:class:`DeprecationWarning` and delegate to :class:`Experiment`, so old
call sites keep producing identical results.

Heavy imports happen lazily so that ``import repro`` stays fast and so
subsystems can be used independently.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigError

__all__ = [
    "BackendKind",
    "Experiment",
    "Result",
    "PingPongResult",
    "OverlapResult",
    "HicmaResult",
    "quick_compare",
    "run_pingpong",
    "run_overlap",
    "run_hicma",
]


class BackendKind(str, enum.Enum):
    """Which PaRSEC communication backend to simulate."""

    MPI = "mpi"
    LCI = "lci"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _normalize_backend(backend: "BackendKind | str") -> str:
    """Accept a :class:`BackendKind` or its string value, uniformly."""
    try:
        return BackendKind(str(backend)).value
    except ValueError:
        known = ", ".join(k.value for k in BackendKind)
        raise ConfigError(
            f"unknown backend {backend!r} (known: {known})"
        ) from None


@dataclass(frozen=True)
class Result:
    """Common surface of one executed experiment.

    Every workload reports the backend it ran on, the simulated
    time-to-completion, the task count, and end-to-end flow-latency
    statistics; subclasses add workload-specific measurements.
    """

    workload: str
    backend: str
    makespan: float
    tasks: int
    flow_latency: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"{self.makespan * 1e3:.3f} ms, {self.tasks} tasks"
        )


@dataclass(frozen=True)
class PingPongResult(Result):
    """Windowed ping-pong outcome (paper §6.2): achieved bandwidth."""

    bandwidth: float = 0.0
    iteration_times: tuple = ()
    activates_sent: int = 0

    @property
    def bandwidth_gbit(self) -> float:
        """Bandwidth in Gbit/s (the unit of the paper's Figure 2)."""
        return self.bandwidth * 8 / 1e9

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"{self.bandwidth_gbit:.2f} Gbit/s over "
            f"{len(self.iteration_times)} iterations"
        )


@dataclass(frozen=True)
class OverlapResult(Result):
    """Computation/communication overlap outcome (paper §6.3)."""

    flops_per_s: float = 0.0
    total_flops: float = 0.0

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"{self.flops_per_s / 1e9:.2f} GFLOP/s sustained"
        )


@dataclass(frozen=True)
class HicmaResult(Result):
    """Simulated HiCMA TLR Cholesky outcome (paper §6.4)."""

    time_to_solution: float = 0.0
    msg_latency: dict = field(default_factory=dict)
    activates_sent: int = 0
    wire_bytes: int = 0
    worker_utilization: float = 0.0

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"time-to-solution {self.time_to_solution * 1e3:.3f} ms, "
            f"{self.tasks} tasks, utilization {self.worker_utilization:.1%}"
        )


#: Workload name -> (config module path, config class, driver function).
_WORKLOADS = {
    "pingpong": ("repro.bench.pingpong", "PingPongConfig", "run_pingpong_benchmark"),
    "overlap": ("repro.bench.overlap", "OverlapConfig", "run_overlap_benchmark"),
    "hicma": ("repro.bench.hicma_bench", "HicmaConfig", "run_hicma_benchmark"),
}


class Experiment:
    """One fully described simulation experiment (keyword-only builder).

    ``workload`` picks the benchmark; ``backend`` takes a
    :class:`BackendKind` or its string value; ``nodes``/``seed`` inject
    into the workload config; ``faults`` is a
    :class:`~repro.config.FaultConfig` or a named plan from
    :data:`~repro.faults.plans.FAULT_PLANS`; remaining keyword arguments
    are workload-config fields (e.g. ``fragment_size`` for ping-pong,
    ``matrix_size``/``tile_size`` for HiCMA) and are validated eagerly
    against the config dataclass — an unknown name raises
    :class:`~repro.errors.ConfigError` at construction, not at run time.
    """

    def __init__(
        self,
        *,
        workload: str,
        backend: "BackendKind | str" = BackendKind.LCI,
        nodes: Optional[int] = None,
        seed: int = 0,
        faults: Any = None,
        **params: Any,
    ):
        if workload not in _WORKLOADS:
            raise ConfigError(
                f"unknown workload {workload!r} "
                f"(known: {', '.join(sorted(_WORKLOADS))})"
            )
        self.workload = workload
        self.backend = _normalize_backend(backend)
        self.nodes = nodes
        self.seed = seed
        if isinstance(faults, str):
            from repro.faults.plans import fault_plan

            faults = fault_plan(faults)
        self.faults = faults
        self.params = dict(params)
        # Eager validation: building the config surfaces unknown or
        # invalid parameters immediately.
        self._config_cls()(**self._config_kwargs())

    def _config_cls(self):
        modname, clsname, _fn = _WORKLOADS[self.workload]
        module = __import__(modname, fromlist=[clsname])
        return getattr(module, clsname)

    def _driver(self):
        modname, _cls, fnname = _WORKLOADS[self.workload]
        module = __import__(modname, fromlist=[fnname])
        return getattr(module, fnname)

    def _config_kwargs(self) -> dict:
        import dataclasses

        kwargs = dict(self.params)
        kwargs["seed"] = self.seed
        if self.nodes is not None:
            kwargs["num_nodes"] = self.nodes
        valid = {f.name for f in dataclasses.fields(self._config_cls())}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ConfigError(
                f"workload {self.workload!r} does not accept parameter(s) "
                f"{unknown}; valid: {sorted(valid)}"
            )
        return kwargs

    def config(self):
        """The frozen workload config this experiment will run."""
        return self._config_cls()(**self._config_kwargs())

    def run(
        self,
        *,
        platform=None,
        schedule_policy=None,
        ctx_observer=None,
    ) -> Result:
        """Execute the experiment and return its typed frozen result.

        ``platform`` overrides the scaled default platform;
        ``schedule_policy``/``ctx_observer`` pass through to the benchmark
        driver (see :func:`repro.bench.pingpong.run_pingpong_benchmark`).
        """
        raw = self._driver()(
            self.backend,
            self.config(),
            platform,
            faults=self.faults,
            schedule_policy=schedule_policy,
            ctx_observer=ctx_observer,
        )
        return self._freeze(raw)

    def _freeze(self, raw) -> Result:
        if self.workload == "pingpong":
            return PingPongResult(
                workload=self.workload,
                backend=self.backend,
                makespan=raw.makespan,
                tasks=raw.tasks,
                flow_latency=dict(raw.flow_latency),
                bandwidth=raw.bandwidth,
                iteration_times=tuple(raw.iteration_times),
                activates_sent=raw.activates_sent,
            )
        if self.workload == "overlap":
            return OverlapResult(
                workload=self.workload,
                backend=self.backend,
                makespan=raw.makespan,
                tasks=raw.tasks,
                flow_latency=dict(raw.flow_latency),
                flops_per_s=raw.flops_per_s,
                total_flops=raw.total_flops,
            )
        return HicmaResult(
            workload=self.workload,
            backend=self.backend,
            makespan=raw.time_to_solution,
            tasks=raw.tasks,
            flow_latency=dict(raw.flow_latency),
            time_to_solution=raw.time_to_solution,
            msg_latency=dict(raw.msg_latency),
            activates_sent=raw.activates_sent,
            wire_bytes=raw.wire_bytes,
            worker_utilization=raw.worker_utilization,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Experiment(workload={self.workload!r}, backend={self.backend!r}, "
            f"nodes={self.nodes!r}, seed={self.seed!r}, params={self.params!r})"
        )


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; use "
        f"repro.Experiment(workload=..., ...).run() instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_pingpong(
    fragment_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    streams: int = 1,
    total_bytes: Optional[int] = None,
    iterations: int = 4,
    sync: bool = True,
    seed: int = 0,
) -> PingPongResult:
    """Deprecated shim: run the ping-pong benchmark (paper §6.2).

    Use ``Experiment(workload="pingpong", ...)`` instead; this delegates
    there and returns the identical :class:`PingPongResult`.
    """
    _deprecated("run_pingpong")
    return Experiment(
        workload="pingpong",
        backend=backend,
        seed=seed,
        fragment_size=fragment_size,
        streams=streams,
        total_bytes=total_bytes,
        iterations=iterations,
        sync=sync,
    ).run()


def run_overlap(
    fragment_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    total_bytes: Optional[int] = None,
    seed: int = 0,
) -> OverlapResult:
    """Deprecated shim: run the overlap benchmark (paper §6.3).

    Use ``Experiment(workload="overlap", ...)`` instead; this delegates
    there and returns the identical :class:`OverlapResult`.
    """
    _deprecated("run_overlap")
    return Experiment(
        workload="overlap",
        backend=backend,
        seed=seed,
        fragment_size=fragment_size,
        total_bytes=total_bytes,
    ).run()


def run_hicma(
    matrix_size: int,
    tile_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    num_nodes: int = 4,
    multithreaded_activate: bool = False,
    seed: int = 0,
) -> HicmaResult:
    """Deprecated shim: run the simulated HiCMA TLR Cholesky (paper §6.4).

    Use ``Experiment(workload="hicma", ...)`` instead; this delegates
    there and returns the identical :class:`HicmaResult`.
    """
    _deprecated("run_hicma")
    return Experiment(
        workload="hicma",
        backend=backend,
        nodes=num_nodes,
        seed=seed,
        matrix_size=matrix_size,
        tile_size=tile_size,
        multithreaded_activate=multithreaded_activate,
    ).run()


def quick_compare(fragment_size: int = 128 * 1024, **kwargs):
    """Deprecated shim: ping-pong on both backends, reported side by side.

    Use two ``Experiment(workload="pingpong", backend=...)`` runs and
    :class:`repro.bench.report.Comparison` instead.  Returns a
    :class:`~repro.bench.report.Comparison` over identical results.
    """
    _deprecated("quick_compare")
    from repro.bench.report import Comparison

    results = {
        kind.value: Experiment(
            workload="pingpong",
            backend=kind,
            fragment_size=fragment_size,
            **kwargs,
        ).run()
        for kind in (BackendKind.MPI, BackendKind.LCI)
    }
    return Comparison(
        title=f"ping-pong @ fragment={fragment_size} B",
        results=results,
        metric="bandwidth_gbit",
        higher_is_better=True,
    )
