"""Top-level public API: one coherent experiment surface.

:class:`Experiment` is the single entry point — a keyword-only builder
naming any registered workload (see :func:`repro.workloads.workload_names`
and the scenario catalog in ``docs/workloads.md``), a backend
(:class:`BackendKind` or its string value, accepted uniformly), a node
count, a seed, an optional fault plan, and workload-specific parameters.
``.run()`` returns a typed frozen result dataclass
(:class:`PingPongResult`/:class:`OverlapResult`/:class:`HicmaResult` for
the paper benchmarks, :class:`GraphResult` for the scenario workloads).
Workloads resolve through the :mod:`repro.workloads` plugin registry, so
external packages can contribute their own via the ``repro.workloads``
entry-point group.

The historical one-call helpers (``run_pingpong``/``run_overlap``/
``run_hicma``/``quick_compare``) remain as thin shims that emit
:class:`DeprecationWarning` and delegate to :class:`Experiment`, so old
call sites keep producing identical results.

Heavy imports happen lazily so that ``import repro`` stays fast and so
subsystems can be used independently.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigError

__all__ = [
    "BackendKind",
    "Experiment",
    "Result",
    "PingPongResult",
    "OverlapResult",
    "HicmaResult",
    "GraphResult",
    "quick_compare",
    "run_pingpong",
    "run_overlap",
    "run_hicma",
]


class BackendKind(str, enum.Enum):
    """Which PaRSEC communication backend to simulate."""

    MPI = "mpi"
    LCI = "lci"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _normalize_backend(backend: "BackendKind | str") -> str:
    """Accept a :class:`BackendKind` or its string value, uniformly."""
    try:
        return BackendKind(str(backend)).value
    except ValueError:
        known = ", ".join(k.value for k in BackendKind)
        raise ConfigError(
            f"unknown backend {backend!r} (known: {known})"
        ) from None


@dataclass(frozen=True)
class Result:
    """Common surface of one executed experiment.

    Every workload reports the backend it ran on, the simulated
    time-to-completion, the task count, and end-to-end flow-latency
    statistics; subclasses add workload-specific measurements.
    """

    workload: str
    backend: str
    makespan: float
    tasks: int
    flow_latency: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"{self.makespan * 1e3:.3f} ms, {self.tasks} tasks"
        )


@dataclass(frozen=True)
class PingPongResult(Result):
    """Windowed ping-pong outcome (paper §6.2): achieved bandwidth."""

    bandwidth: float = 0.0
    iteration_times: tuple = ()
    activates_sent: int = 0

    @property
    def bandwidth_gbit(self) -> float:
        """Bandwidth in Gbit/s (the unit of the paper's Figure 2)."""
        return self.bandwidth * 8 / 1e9

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"{self.bandwidth_gbit:.2f} Gbit/s over "
            f"{len(self.iteration_times)} iterations"
        )


@dataclass(frozen=True)
class OverlapResult(Result):
    """Computation/communication overlap outcome (paper §6.3)."""

    flops_per_s: float = 0.0
    total_flops: float = 0.0

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"{self.flops_per_s / 1e9:.2f} GFLOP/s sustained"
        )


@dataclass(frozen=True)
class HicmaResult(Result):
    """Simulated HiCMA TLR Cholesky outcome (paper §6.4)."""

    time_to_solution: float = 0.0
    msg_latency: dict = field(default_factory=dict)
    activates_sent: int = 0
    wire_bytes: int = 0
    worker_utilization: float = 0.0

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"time-to-solution {self.time_to_solution * 1e3:.3f} ms, "
            f"{self.tasks} tasks, utilization {self.worker_utilization:.1%}"
        )


@dataclass(frozen=True)
class GraphResult(Result):
    """Outcome of a registered task-graph scenario workload.

    The shared typed result of every catalog workload (``stencil``,
    ``taskbench``, ``ring``, ...): the runtime's common measurements,
    uniformly comparable across scenarios and backends.
    """

    activates_sent: int = 0
    wire_bytes: int = 0
    worker_utilization: float = 0.0
    events_processed: int = 0

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"{self.makespan * 1e3:.3f} ms, {self.tasks} tasks, "
            f"{self.wire_bytes / 1e6:.1f} MB wire, "
            f"utilization {self.worker_utilization:.1%}"
        )


class Experiment:
    """One fully described simulation experiment (keyword-only builder).

    ``workload`` names any workload registered with
    :mod:`repro.workloads` (the unknown-name :class:`~repro.errors.
    ConfigError` lists what is actually registered); ``backend`` takes a
    :class:`BackendKind` or its string value; ``nodes``/``seed`` inject
    into the workload config; ``faults`` is a
    :class:`~repro.config.FaultConfig` or a named plan from
    :data:`~repro.faults.plans.FAULT_PLANS`; ``partitions`` selects the
    partitioned PDES engine (an ``int`` worker-process count or a
    :class:`~repro.config.PartitionConfig`, for workloads declaring
    ``accepts_partitions``); remaining keyword arguments
    are workload-config fields (e.g. ``fragment_size`` for ping-pong,
    ``width``/``depth``/``pattern`` for taskbench) and are validated
    eagerly against the workload's parameter schema — an unknown name
    raises :class:`~repro.errors.ConfigError` at construction, not at
    run time.
    """

    def __init__(
        self,
        *,
        workload: str,
        backend: "BackendKind | str" = BackendKind.LCI,
        nodes: Optional[int] = None,
        seed: int = 0,
        faults: Any = None,
        partitions: Any = None,
        **params: Any,
    ):
        from repro.config import as_partition_config
        from repro.workloads import get_workload

        self._spec = get_workload(workload)
        self.workload = workload
        self.backend = _normalize_backend(backend)
        self.nodes = nodes
        self.seed = seed
        if isinstance(faults, str):
            from repro.faults.plans import fault_plan

            faults = fault_plan(faults)
        self.faults = faults
        # Eager validation: an int/PartitionConfig/None contract violation
        # surfaces here, not mid-run.  ``None`` defers to the
        # ``REPRO_SIM_PARTITIONS`` environment default at run time.
        self.partitions = as_partition_config(partitions)
        self.params = dict(params)
        # Eager validation: building the config surfaces unknown or
        # invalid parameters immediately.
        self._spec.build_config(**self._config_kwargs())

    def _config_kwargs(self) -> dict:
        kwargs = dict(self.params)
        kwargs["seed"] = self.seed
        if self.nodes is not None:
            kwargs["num_nodes"] = self.nodes
        return kwargs

    def config(self):
        """The frozen workload config this experiment will run."""
        return self._spec.build_config(**self._config_kwargs())

    def run(
        self,
        *,
        platform=None,
        schedule_policy=None,
        ctx_observer=None,
        progress=None,
        guards=None,
    ) -> Result:
        """Execute the experiment and return its typed frozen result.

        ``platform`` overrides the scaled default platform;
        ``schedule_policy``/``ctx_observer`` pass through to the benchmark
        driver (see :func:`repro.bench.pingpong.run_pingpong_benchmark`).
        ``progress``/``guards`` are accepted only by workloads declaring
        ``accepts_progress`` (currently ``hicma``) — elsewhere a non-None
        value raises :class:`~repro.errors.ConfigError` rather than
        silently dropping a supervision request.  The partitioned PDES
        engine is selected by ``Experiment(partitions=...)`` — or, when
        that is unset, by the ``REPRO_SIM_PARTITIONS`` environment
        variable — and requires the workload to declare
        ``accepts_partitions``.
        """
        partitions = self.partitions
        if partitions is None:
            from repro.config import default_partitions

            partitions = default_partitions()
        raw = self._spec.run(
            self.backend,
            self.config(),
            platform,
            faults=self.faults,
            schedule_policy=schedule_policy,
            ctx_observer=ctx_observer,
            progress=progress,
            guards=guards,
            partitions=partitions,
        )
        return self._spec.freeze(raw, self.backend)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Experiment(workload={self.workload!r}, backend={self.backend!r}, "
            f"nodes={self.nodes!r}, seed={self.seed!r}, params={self.params!r})"
        )


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; use "
        f"repro.Experiment(workload=..., ...).run() instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_pingpong(
    fragment_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    streams: int = 1,
    total_bytes: Optional[int] = None,
    iterations: int = 4,
    sync: bool = True,
    seed: int = 0,
) -> PingPongResult:
    """Deprecated shim: run the ping-pong benchmark (paper §6.2).

    Use ``Experiment(workload="pingpong", ...)`` instead; this delegates
    there and returns the identical :class:`PingPongResult`.
    """
    _deprecated("run_pingpong")
    return Experiment(
        workload="pingpong",
        backend=backend,
        seed=seed,
        fragment_size=fragment_size,
        streams=streams,
        total_bytes=total_bytes,
        iterations=iterations,
        sync=sync,
    ).run()


def run_overlap(
    fragment_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    total_bytes: Optional[int] = None,
    seed: int = 0,
) -> OverlapResult:
    """Deprecated shim: run the overlap benchmark (paper §6.3).

    Use ``Experiment(workload="overlap", ...)`` instead; this delegates
    there and returns the identical :class:`OverlapResult`.
    """
    _deprecated("run_overlap")
    return Experiment(
        workload="overlap",
        backend=backend,
        seed=seed,
        fragment_size=fragment_size,
        total_bytes=total_bytes,
    ).run()


def run_hicma(
    matrix_size: int,
    tile_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    num_nodes: int = 4,
    multithreaded_activate: bool = False,
    seed: int = 0,
) -> HicmaResult:
    """Deprecated shim: run the simulated HiCMA TLR Cholesky (paper §6.4).

    Use ``Experiment(workload="hicma", ...)`` instead; this delegates
    there and returns the identical :class:`HicmaResult`.
    """
    _deprecated("run_hicma")
    return Experiment(
        workload="hicma",
        backend=backend,
        nodes=num_nodes,
        seed=seed,
        matrix_size=matrix_size,
        tile_size=tile_size,
        multithreaded_activate=multithreaded_activate,
    ).run()


def quick_compare(fragment_size: int = 128 * 1024, **kwargs):
    """Deprecated shim: ping-pong on both backends, reported side by side.

    Use two ``Experiment(workload="pingpong", backend=...)`` runs and
    :class:`repro.bench.report.Comparison` instead.  Returns a
    :class:`~repro.bench.report.Comparison` over identical results.
    """
    _deprecated("quick_compare")
    from repro.bench.report import Comparison

    results = {
        kind.value: Experiment(
            workload="pingpong",
            backend=kind,
            fragment_size=fragment_size,
            **kwargs,
        ).run()
        for kind in (BackendKind.MPI, BackendKind.LCI)
    }
    return Comparison(
        title=f"ping-pong @ fragment={fragment_size} B",
        results=results,
        metric="bandwidth_gbit",
        higher_is_better=True,
    )
