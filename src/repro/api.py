"""Top-level convenience API.

These helpers wrap the benchmark drivers in one-call form for interactive
use and the examples.  Heavy imports happen lazily so that
``import repro`` stays fast and so subsystems can be used independently.
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = ["BackendKind", "quick_compare", "run_pingpong", "run_overlap", "run_hicma"]


class BackendKind(str, enum.Enum):
    """Which PaRSEC communication backend to simulate."""

    MPI = "mpi"
    LCI = "lci"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def run_pingpong(
    fragment_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    streams: int = 1,
    total_bytes: Optional[int] = None,
    iterations: int = 4,
    sync: bool = True,
    seed: int = 0,
):
    """Run the windowed ping-pong bandwidth benchmark (paper §6.2).

    Returns a :class:`repro.bench.pingpong.PingPongResult` with achieved
    bandwidth and latency statistics.
    """
    from repro.bench.pingpong import PingPongConfig, run_pingpong_benchmark

    cfg = PingPongConfig(
        fragment_size=fragment_size,
        streams=streams,
        total_bytes=total_bytes,
        iterations=iterations,
        sync=sync,
        seed=seed,
    )
    return run_pingpong_benchmark(str(backend), cfg)


def run_overlap(
    fragment_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    total_bytes: Optional[int] = None,
    seed: int = 0,
):
    """Run the computation/communication overlap benchmark (paper §6.3)."""
    from repro.bench.overlap import OverlapConfig, run_overlap_benchmark

    cfg = OverlapConfig(fragment_size=fragment_size, total_bytes=total_bytes, seed=seed)
    return run_overlap_benchmark(str(backend), cfg)


def run_hicma(
    matrix_size: int,
    tile_size: int,
    backend: "BackendKind | str" = BackendKind.LCI,
    *,
    num_nodes: int = 4,
    multithreaded_activate: bool = False,
    seed: int = 0,
):
    """Run the simulated HiCMA TLR Cholesky (paper §6.4)."""
    from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark

    cfg = HicmaConfig(
        matrix_size=matrix_size,
        tile_size=tile_size,
        num_nodes=num_nodes,
        multithreaded_activate=multithreaded_activate,
        seed=seed,
    )
    return run_hicma_benchmark(str(backend), cfg)


def quick_compare(fragment_size: int = 128 * 1024, **kwargs):
    """Run the ping-pong benchmark with both backends and report side by side.

    Returns a :class:`repro.bench.report.Comparison`.
    """
    from repro.bench.report import Comparison

    results = {
        str(kind): run_pingpong(fragment_size, kind, **kwargs)
        for kind in (BackendKind.MPI, BackendKind.LCI)
    }
    return Comparison(
        title=f"ping-pong @ fragment={fragment_size} B",
        results=results,
        metric="bandwidth_gbit",
        higher_is_better=True,
    )
