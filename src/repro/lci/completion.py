"""LCI completion mechanisms: records, queues, synchronizers.

LCI lets each operation choose how completion is signalled (§5.1):

- a **handler** — a plain callable invoked by the progress engine;
- a **completion queue** — records pushed by progress, popped by consumers;
- a **synchronizer** — a one-shot waitable, analogous to an MPI request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.config import LciCosts
from repro.sim.core import Event, Simulator
from repro.sim.primitives import Store

__all__ = ["CompletionRecord", "CompletionQueue", "Synchronizer"]


@dataclass(frozen=True)
class CompletionRecord:
    """What completed: operation kind, peer, tag, size, and user context."""

    op: str  # "sendi" | "sendb" | "sendd" | "recvd" | "am"
    peer: int
    tag: int
    size: int
    user_ctx: Any = None
    payload: Any = None


class CompletionQueue:
    """A FIFO of completion records.

    Pushes happen inside progress (cost folded into the drain); pops charge
    ``costs.cq_pop`` to the consuming thread.
    """

    def __init__(self, sim: Simulator, costs: Optional[LciCosts] = None):
        self.sim = sim
        self.costs = costs or LciCosts()
        self._store = Store(sim)

    def push(self, record: CompletionRecord) -> None:
        """Enqueue a completion (called by the progress engine)."""
        self._store.try_put(record)

    def pop(self) -> Generator[Any, Any, CompletionRecord]:
        """Blocking pop (generator)."""
        record = yield self._store.get()
        yield self.costs.cq_pop
        return record

    def try_pop(self) -> Optional[CompletionRecord]:
        """Non-blocking pop; None when empty.  The consumer should charge
        ``costs.cq_pop`` itself when batching (the backends do)."""
        ok, record = self._store.try_get()
        return record if ok else None

    def __len__(self) -> int:
        return len(self._store)


class Synchronizer:
    """A one-shot completion flag a thread can wait on (like an LCI sync /
    MPI request)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.event = Event(sim)
        self.record: Optional[CompletionRecord] = None

    @property
    def triggered(self) -> bool:
        """True once signalled."""
        return self.event.triggered

    def signal(self, record: CompletionRecord) -> None:
        """Mark complete with ``record`` (wakes any waiter)."""
        self.record = record
        self.event.succeed(record)

    def wait(self) -> Generator[Any, Any, CompletionRecord]:
        """Yield until signalled; returns the completion record."""
        record = yield self.event
        return record
