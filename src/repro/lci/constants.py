"""LCI status codes."""

LCI_OK = 0
#: Insufficient resources; the caller must progress and retry (paper §5.1).
LCI_ERR_RETRY = 1
