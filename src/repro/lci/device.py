"""The LCI device: protocol state machines and explicit progress.

One :class:`LciDevice` per node.  Unlike the MPI model there is **no
library-wide lock** — LCI is designed for heavily multithreaded use
(§5.1) — and protocol processing happens only inside :meth:`progress`,
which the consuming runtime drives explicitly (the PaRSEC LCI backend
dedicates a thread to it).

Resource pools and back-pressure:

- ``sendb`` consumes a TX packet until the NIC has drained the copy;
- incoming short/buffered messages consume an RX packet until the consumer
  calls :meth:`free_rx_packet` (dynamic allocation, §5.2 — no posted
  receives, no matching for active messages);
- ``sendd``/``recvd`` consume a direct (RDMA) slot until completion.

Exhaustion returns :data:`LCI_ERR_RETRY` from the non-blocking call, or —
for incoming active messages — stalls the AM delivery queue (hardware
receive-queue depletion).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.config import LciCosts
from repro.errors import LciError
from repro.lci.completion import CompletionQueue, CompletionRecord, Synchronizer
from repro.lci.constants import LCI_ERR_RETRY, LCI_OK
from repro.network.fabric import Fabric
from repro.network.message import MessageClass, WireMessage
from repro.obs.bus import ObsBus
from repro.sim.core import Event, Process, Simulator

__all__ = ["LciDevice", "LciWorld"]

#: Protocol header bytes on every LCI wire message.
_HEADER = 32
#: RTS/RTR control message size.
_CTRL = 64

_op_ids = itertools.count()

Completion = Any  # Synchronizer | CompletionQueue | Callable | None


class LciWorld:
    """All LCI devices of a simulated job (one per fabric node)."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        costs: Optional[LciCosts] = None,
        obs: Optional[ObsBus] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.costs = costs or LciCosts()
        self.obs = obs if obs is not None else sim.obs
        self.devices = [LciDevice(self, node) for node in range(fabric.num_nodes)]
        # Deferred wire sends carry their sender-side FIN as a ``_fin``
        # payload hint; the fabric raises it here once the destination NIC
        # resolves the delivery time.
        fabric.register_fin_applier("lci", self._apply_fin)

    def _apply_fin(self, node: int, ref: int) -> None:
        self.devices[node]._push_hw(("fin", ref))

    @property
    def size(self) -> int:
        """Number of devices (= fabric nodes)."""
        return len(self.devices)


class _DirectOp:
    """Bookkeeping for an in-flight direct (RDMA) operation."""

    __slots__ = ("op_id", "peer", "tag", "size", "payload", "comp", "user_ctx")

    def __init__(self, peer: int, tag: int, size: int, payload: Any, comp: Completion, user_ctx: Any):
        self.op_id = next(_op_ids)
        self.peer = peer
        self.tag = tag
        self.size = size
        self.payload = payload
        self.comp = comp
        self.user_ctx = user_ctx


class LciDevice:
    """One node's LCI endpoint."""

    def __init__(self, world: LciWorld, node: int):
        self.world = world
        self.sim = world.sim
        self.costs = world.costs
        self.node = node
        self.faults = world.fabric.faults
        # Resource pools.
        self.tx_packets_free = self.costs.packet_pool_size
        self.rx_packets_free = self.costs.packet_pool_size
        self.send_slots_free = self.costs.direct_slots
        self.recv_slots_free = self.costs.direct_slots
        # Incoming queues (filled by the fabric handler).
        self._rx_am: deque[WireMessage] = deque()
        self._rx_proto: deque[WireMessage] = deque()
        self._hw: deque[tuple] = deque()
        # Direct-protocol state.
        self._posted_recvd: dict[tuple[int, int], deque[_DirectOp]] = {}
        self._unexpected_rts: deque[tuple[int, dict]] = deque()
        self._send_ops: dict[int, _DirectOp] = {}
        self._recv_ops: dict[int, _DirectOp] = {}
        #: Active-message handler, set by the consuming runtime:
        #: ``handler(record: CompletionRecord) -> None`` (runs in progress).
        self.am_handler: Optional[Callable[[CompletionRecord], None]] = None
        #: One-sided put notification handler (for :meth:`putd` targets).
        self.put_handler: Optional[Callable[[CompletionRecord], None]] = None
        self._waiters: list[Event] = []
        # Back-pressure / pool-occupancy instruments (§5.2): every
        # LCI_ERR_RETRY is counted per operation class, and the TX/RX packet
        # pools are sampled on each allocation.
        obs = world.obs
        self._c_retry_sendb = obs.counter("lci.retry.sendb", node)
        self._c_retry_sendd = obs.counter("lci.retry.sendd", node)
        self._c_retry_putd = obs.counter("lci.retry.putd", node)
        self._c_retry_recvd = obs.counter("lci.retry.recvd", node)
        self._c_am_stall = obs.counter("lci.rx_am_stalls", node)
        self._h_tx_pool = obs.histogram("lci.tx_pool_used", node)
        self._h_rx_pool = obs.histogram("lci.rx_pool_used", node)
        world.fabric.register_handler(node, "lci", self._on_wire)

    # ------------------------------------------------------------------
    # wire side
    # ------------------------------------------------------------------

    def _on_wire(self, msg: WireMessage) -> None:
        kind = msg.payload["kind"]
        if kind == "am":
            self._rx_am.append(msg)
        elif kind == "rdma":
            if self.faults.enabled:
                # Fault mode: completions must follow the *actual* delivery
                # (the sender's predicted times would complete transfers
                # whose data was dropped).  Raise the local CQE now and the
                # sender's FIN one hardware-ack latency later.
                p = msg.payload
                if p.get("one_sided"):
                    self._push_hw(("pcomp",) + p["pcomp"])
                else:
                    self._push_hw(("rcomp", p["rd"], p["data"]))
                ack = self.world.fabric.base_latency(self.node, msg.src)
                src_dev = self.world.devices[msg.src]
                self.sim.call_later(ack, src_dev._push_hw, ("fin", p["sd"]))
                return
            if self.world.fabric.defers_wire and msg.src != self.node:
                # Deferred-ejection mode (serial epoch flush or partition
                # barrier): the delivery time is only resolved at the
                # destination NIC, so completions are delivery-driven —
                # the receiver raises its CQE here, and the sender's FIN
                # is raised from the ``_fin`` payload hint (the fabric's
                # fin applier serially, a barrier notice when partitioned).
                p = msg.payload
                if p.get("one_sided"):
                    self._push_hw(("pcomp",) + p["pcomp"])
                else:
                    self._push_hw(("rcomp", p["rd"], p["data"]))
                return
            # Loopback RDMA lands directly in registered memory; the
            # matching hardware completion ("rcomp") is enqueued separately
            # by the sender at delivery time, so the wire message itself
            # needs no software handling.
            return
        else:
            self._rx_proto.append(msg)
        self._notify()

    def _push_hw(self, record: tuple) -> None:
        self._hw.append(record)
        self._notify()

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            if isinstance(w, Process):
                w.wake()
            else:
                w.succeed()

    def activity_event(self) -> Event:
        """Fires when there is (or as soon as there is) progress work."""
        evt = Event(self.sim)
        if self._hw or self._rx_proto or (self._rx_am and self.rx_packets_free > 0):
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def park(self, proc: Process) -> bool:
        """Register a parked process to wake on the next progress work.

        Returns ``False`` when work is already pending — the caller should
        run a progress pass instead of parking.  Deduplicated.
        """
        if self._hw or self._rx_proto or (self._rx_am and self.rx_packets_free > 0):
            return False
        if proc not in self._waiters:
            self._waiters.append(proc)
        return True

    @property
    def pending_work(self) -> int:
        """Items awaiting a progress pass (diagnostic)."""
        return len(self._hw) + len(self._rx_proto) + len(self._rx_am)

    # ------------------------------------------------------------------
    # sends
    # ------------------------------------------------------------------

    def sendi(self, dst: int, tag: int, size: int, data: Any = None) -> Generator[Any, Any, int]:
        """Immediate send: inline, no completion object, always fits the NIC.

        Returns LCI_OK.  Raises for messages over the immediate limit.
        """
        if size > self.costs.immediate_max:
            raise LciError(
                f"sendi of {size} B exceeds immediate limit {self.costs.immediate_max}"
            )
        yield self.costs.immediate_send
        self._send_am_wire(dst, tag, size, data, proto="short")
        return LCI_OK

    def sendb(
        self, dst: int, tag: int, size: int, data: Any = None, comp: Completion = None, user_ctx: Any = None
    ) -> Generator[Any, Any, int]:
        """Buffered send: copy into a TX packet; LCI_ERR_RETRY when the pool
        is empty.  Local completion when the NIC drains the packet."""
        if size > self.costs.buffered_max:
            raise LciError(
                f"sendb of {size} B exceeds buffered limit {self.costs.buffered_max}"
            )
        if self.tx_packets_free <= 0:
            self._c_retry_sendb.inc()
            return LCI_ERR_RETRY
        self.tx_packets_free -= 1
        self._h_tx_pool.observe(self.costs.packet_pool_size - self.tx_packets_free)
        yield self.costs.buffered_send + size * self.costs.copy_per_byte
        msg = self._send_am_wire(dst, tag, size, data, proto="buffered")
        # The packet is held until the NIC has read it (tail departure).
        hold = max(msg.depart_time - self.sim.now, 0.0)
        self.sim.call_later(hold, self._tx_packet_done, dst, tag, size, comp, user_ctx)
        return LCI_OK

    def _tx_packet_done(self, dst: int, tag: int, size: int, comp: Completion, user_ctx: Any) -> None:
        self.tx_packets_free += 1
        self._signal(comp, CompletionRecord("sendb", dst, tag, size, user_ctx))
        self._notify()

    def _send_am_wire(self, dst: int, tag: int, size: int, data: Any, proto: str) -> WireMessage:
        msg = WireMessage(
            src=self.node,
            dst=dst,
            size=size + _HEADER,
            msg_class=MessageClass.CONTROL
            if size + _HEADER <= 4096
            else MessageClass.DATA,
            channel="lci",
            payload={"kind": "am", "proto": proto, "tag": tag, "size": size, "data": data},
        )
        self.world.fabric.send(msg)
        return msg

    def sendd(
        self, dst: int, tag: int, size: int, data: Any = None, comp: Completion = None, user_ctx: Any = None
    ) -> Generator[Any, Any, int]:
        """Direct (RDMA) send with rendezvous; LCI_ERR_RETRY when no slot.

        Send and receive slots are separate pools so that back-pressure on
        one side cannot deadlock against the other.
        """
        if self.send_slots_free <= 0:
            self._c_retry_sendd.inc()
            return LCI_ERR_RETRY
        self.send_slots_free -= 1
        op = _DirectOp(dst, tag, size, data, comp, user_ctx)
        self._send_ops[op.op_id] = op
        yield self.costs.direct_post
        self.world.fabric.send(
            WireMessage(
                src=self.node,
                dst=dst,
                size=_CTRL,
                msg_class=MessageClass.CONTROL,
                channel="lci",
                payload={"kind": "rts", "tag": tag, "size": size, "sd": op.op_id},
            )
        )
        return LCI_OK

    def putd(
        self,
        dst: int,
        tag: int,
        size: int,
        data: Any = None,
        comp: Completion = None,
        user_ctx: Any = None,
        remote_meta: Any = None,
    ) -> Generator[Any, Any, int]:
        """One-sided put with remote completion notification (the §7
        future-work feature: "new features to LCI that can directly
        implement the PaRSEC put interface").

        The target needs no posted receive and no matching: the data lands
        in registered memory (the runtime exchanged registration info via
        its ACTIVATE/GET DATA messages) and the target's progress engine
        raises a completion carrying ``remote_meta`` to the registered
        :attr:`put_handler`.  LCI_ERR_RETRY when no send slot is free.
        """
        if self.send_slots_free <= 0:
            self._c_retry_putd.inc()
            return LCI_ERR_RETRY
        self.send_slots_free -= 1
        op = _DirectOp(dst, tag, size, data, comp, user_ctx)
        self._send_ops[op.op_id] = op
        yield self.costs.direct_post
        fabric = self.world.fabric
        payload = {"kind": "rdma", "one_sided": True}
        deferred = fabric.defers_wire and dst != self.node
        if self.faults.enabled:
            # Completion material travels with the message so the receiver
            # can raise both CQEs at actual delivery (see :meth:`_on_wire`).
            payload["sd"] = op.op_id
            payload["pcomp"] = (tag, size, self.node, data, remote_meta)
        elif deferred:
            # Deferred wire put: the receiver raises the pcomp at the
            # resolved delivery and the FIN comes back through the ``_fin``
            # hint one hardware-ack latency after delivery.
            payload["pcomp"] = (tag, size, self.node, data, remote_meta)
            payload["_fin"] = (op.op_id, fabric.base_latency(dst, self.node))
        deliver = fabric.send(
            WireMessage(
                src=self.node,
                dst=dst,
                size=size + _HEADER,
                msg_class=MessageClass.DATA,
                channel="lci",
                payload=payload,
            )
        )
        if not self.faults.enabled and not deferred:
            peer = self.world.devices[dst]
            self.sim.call_later(
                deliver - self.sim.now,
                peer._push_hw,
                ("pcomp", tag, size, self.node, data, remote_meta),
            )
            ack = fabric.base_latency(dst, self.node)
            self.sim.call_later(
                deliver - self.sim.now + ack, self._push_hw, ("fin", op.op_id)
            )
        return LCI_OK

    def recvd(
        self, src: int, tag: int, size: int, comp: Completion = None, user_ctx: Any = None
    ) -> Generator[Any, Any, int]:
        """Post a direct receive for (src, tag); LCI_ERR_RETRY when no slot."""
        if self.recv_slots_free <= 0:
            self._c_retry_recvd.inc()
            return LCI_ERR_RETRY
        self.recv_slots_free -= 1
        op = _DirectOp(src, tag, size, None, comp, user_ctx)
        self._recv_ops[op.op_id] = op
        yield self.costs.direct_post
        # Check unexpected RTS first (handshake may have raced us).
        for i, (rts_src, p) in enumerate(self._unexpected_rts):
            if rts_src == src and p["tag"] == tag:
                del self._unexpected_rts[i]
                self._reply_rtr(src, p, op)
                return LCI_OK
        self._posted_recvd.setdefault((src, tag), deque()).append(op)
        return LCI_OK

    # ------------------------------------------------------------------
    # progress (§5.3.1: drain CQs, match, respond to RTS, run handlers,
    # refill receive queues)
    # ------------------------------------------------------------------

    def progress(self) -> Generator[Any, Any, int]:
        """One progress pass; returns the number of items processed."""
        n = 0
        # 1. Hardware completions (send FINs, RDMA write arrivals).
        while self._hw:
            record = self._hw.popleft()
            yield self.costs.completion_drain
            self._handle_hw(record)
            n += 1
        # 2. Protocol control messages (RTS/RTR).
        while self._rx_proto:
            msg = self._rx_proto.popleft()
            yield self.costs.completion_drain
            self._handle_proto(msg)
            n += 1
        # 3. Active messages, limited by RX packet availability.
        while self._rx_am and self.rx_packets_free > 0:
            msg = self._rx_am.popleft()
            self.rx_packets_free -= 1
            self._h_rx_pool.observe(self.costs.packet_pool_size - self.rx_packets_free)
            yield self.costs.completion_drain + self.costs.refill_recv
            p = msg.payload
            record = CompletionRecord(
                "am", msg.src, p["tag"], p["size"], payload=p["data"]
            )
            if self.am_handler is None:
                raise LciError(f"node {self.node}: active message with no handler")
            yield self.costs.handler_dispatch
            result = self.am_handler(record)
            if hasattr(result, "send"):
                # Generator handler: run it here so its CPU cost lands on the
                # thread driving progress (the LCI progress thread).
                yield from result
            n += 1
        if self._rx_am and self.rx_packets_free <= 0:
            # Hardware receive-queue depletion (§5.2): deliveries stall
            # until a consumer frees an RX packet.
            self._c_am_stall.inc()
        return n

    def free_rx_packet(self) -> None:
        """Return a dynamically allocated AM buffer to the pool."""
        if self.rx_packets_free >= self.costs.packet_pool_size:
            raise LciError("free_rx_packet without allocation")
        self.rx_packets_free += 1
        if self._rx_am:
            self._notify()

    def _handle_hw(self, record: tuple) -> None:
        kind = record[0]
        if kind == "fin":  # sender-side RDMA completion
            op = self._send_ops.pop(record[1])
            self.send_slots_free += 1
            self._signal(op.comp, CompletionRecord("sendd", op.peer, op.tag, op.size, op.user_ctx))
        elif kind == "rcomp":  # receiver-side RDMA write arrival
            op = self._recv_ops.pop(record[1])
            self.recv_slots_free += 1
            self._signal(
                op.comp,
                CompletionRecord("recvd", op.peer, op.tag, op.size, op.user_ctx, payload=record[2]),
            )
        elif kind == "pcomp":  # one-sided put arrival (remote notification)
            _kind, tag, size, src, data, remote_meta = record
            if self.put_handler is None:
                raise LciError(f"node {self.node}: one-sided put with no put_handler")
            self.put_handler(
                CompletionRecord("putd_remote", src, tag, size, remote_meta, payload=data)
            )
        else:  # pragma: no cover - defensive
            raise LciError(f"unknown hardware completion {kind!r}")

    def _handle_proto(self, msg: WireMessage) -> None:
        p = msg.payload
        if p["kind"] == "rts":
            queue = self._posted_recvd.get((msg.src, p["tag"]))
            if queue:
                op = queue.popleft()
                self._reply_rtr(msg.src, p, op)
            else:
                self._unexpected_rts.append((msg.src, p))
        elif p["kind"] == "rtr":
            op = self._send_ops.get(p["sd"])
            if op is None:
                raise LciError(f"RTR for unknown direct send {p['sd']}")
            fabric = self.world.fabric
            data_payload = {"kind": "rdma", "rd": p["rd"], "sd": op.op_id, "data": op.payload}
            deferred = fabric.defers_wire and op.peer != self.node
            if deferred and not self.faults.enabled:
                data_payload["_fin"] = (
                    op.op_id, fabric.base_latency(op.peer, self.node)
                )
            data_msg = WireMessage(
                src=self.node,
                dst=op.peer,
                size=op.size + _HEADER,
                msg_class=MessageClass.DATA,
                channel="lci",
                payload=data_payload,
            )
            deliver = fabric.send(data_msg)
            if not self.faults.enabled and not deferred:
                # Loopback RDMA write: receiver CQE at delivery; sender CQE
                # one wire latency later (hardware ack), both drained by
                # progress.  (In fault mode the receiver raises both at
                # actual delivery; deferred wire sends raise the receiver
                # CQE at the resolved delivery and the FIN via ``_fin``.)
                peer_dev = self.world.devices[op.peer]
                self.sim.call_later(
                    deliver - self.sim.now,
                    peer_dev._push_hw,
                    ("rcomp", p["rd"], op.payload),
                )
                ack = fabric.base_latency(op.peer, self.node)
                self.sim.call_later(deliver - self.sim.now + ack, self._push_hw, ("fin", op.op_id))
        else:  # pragma: no cover - defensive
            raise LciError(f"unknown protocol message {p['kind']!r}")

    def _reply_rtr(self, src: int, rts_payload: dict, op: _DirectOp) -> None:
        if rts_payload["size"] > op.size:
            raise LciError(
                f"direct receive too small: {op.size} B posted, {rts_payload['size']} B incoming"
            )
        op.size = rts_payload["size"]
        self.world.fabric.send(
            WireMessage(
                src=self.node,
                dst=src,
                size=_CTRL,
                msg_class=MessageClass.CONTROL,
                channel="lci",
                payload={"kind": "rtr", "sd": rts_payload["sd"], "rd": op.op_id},
            )
        )

    # ------------------------------------------------------------------

    def _signal(self, comp: Completion, record: CompletionRecord) -> None:
        if comp is None:
            return
        if isinstance(comp, Synchronizer):
            comp.signal(record)
        elif isinstance(comp, CompletionQueue):
            comp.push(record)
        elif callable(comp):
            comp(record)
        else:
            raise LciError(f"unsupported completion target {comp!r}")
