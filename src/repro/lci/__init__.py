"""A simulated Lightweight Communication Interface (LCI).

Models the LCI library of the paper (§5.1): a thin, explicitly-progressed
communication layer with three protocols —

- **Immediate**: messages up to a cache line, sent inline;
- **Buffered**: medium messages (≤ ~12 KiB) copied into pre-registered
  packets, received into *dynamically allocated* buffers with no posted
  receive or matching;
- **Direct**: arbitrary-length RDMA transfers with tag matching and a
  rendezvous (RTS/RTR) protocol.

Every send is non-blocking and can fail with :data:`LCI_ERR_RETRY` when a
resource pool (packets, direct slots) is exhausted — the library exerts
back-pressure instead of buffering unboundedly.  All protocol processing
happens inside :meth:`LciDevice.progress`, which the consuming runtime calls
from wherever it wants (the PaRSEC LCI backend dedicates a progress thread
to it, §5.3.1).  Completion is signalled through a handler function, a
completion queue, or a synchronizer — caller's choice per operation.
"""

from repro.lci.constants import LCI_OK, LCI_ERR_RETRY
from repro.lci.completion import CompletionQueue, Synchronizer, CompletionRecord
from repro.lci.device import LciDevice, LciWorld

__all__ = [
    "LCI_OK",
    "LCI_ERR_RETRY",
    "CompletionQueue",
    "Synchronizer",
    "CompletionRecord",
    "LciDevice",
    "LciWorld",
]
