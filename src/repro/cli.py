"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run``          run any registered workload (see ``docs/workloads.md``)
``workloads``    list the registered workloads and their parameters
``pingpong``     run the §6.2 bandwidth benchmark for one fragment size
``overlap``      run the §6.3 overlap benchmark for one fragment size
``hicma``        run one §6.4 TLR Cholesky configuration
``sweep``        run a named experiment grid (fig4 / fig5 / pingpong /
                 taskbench) in parallel through the cached sweep engine
``netpipe``      raw fabric ping-pong baseline for a list of sizes
``compare``      MPI vs LCI side-by-side on the ping-pong benchmark
``validate``     simulator self-checks against closed-form models
``explore``      schedule-space exploration: re-run a scenario under
                 alternative legal interleavings, check protocol invariants
``trace-export`` run a small job with observability on, export the trace
``chaos``        run TLR Cholesky under a named fault plan, report recovery
``info``         print the calibrated platform constants

Every verb spells the shared knobs identically — ``--backend``,
``--seed``, ``--nodes``, ``--jobs``, ``--partitions`` — via a common
parent parser (:func:`_common_flags`); old spellings (``--num-nodes``)
remain as hidden aliases.  Verbs that cannot partition (``chaos``,
``explore``) still take ``--partitions`` and reject it with a clear
:class:`~repro.errors.ConfigError` instead of not knowing the flag.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _size(text: str) -> int:
    """Parse '64K', '8M', '1024' into bytes."""
    text = text.strip().upper()
    mult = 1
    if text.endswith(("K", "KB", "KIB")):
        mult, text = 1024, text.rstrip("BIK")
    elif text.endswith(("M", "MB", "MIB")):
        mult, text = 1024 * 1024, text.rstrip("BIM")
    try:
        return int(float(text) * mult)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad size: {text!r}") from exc


def _common_flags(
    *,
    backend: Optional[str] = None,
    seed: Optional[int] = None,
    nodes: Optional[int] = None,
    jobs: Optional[int] = None,
    partitions: bool = False,
    backend_choices: Sequence[str] = ("mpi", "lci"),
) -> argparse.ArgumentParser:
    """Parent parser for the flags every verb spells identically.

    Pass a default to include a flag on the verb; leave it ``None`` to
    omit it.  ``--num-nodes`` is kept as a hidden alias for ``--nodes``.
    ``partitions=True`` adds ``--partitions`` (the partitioned PDES
    engine; its default stays ``None`` = serial or the
    ``REPRO_SIM_PARTITIONS`` environment default).
    """
    p = argparse.ArgumentParser(add_help=False)
    if backend is not None:
        p.add_argument("--backend", choices=list(backend_choices),
                       default=backend)
    if seed is not None:
        p.add_argument("--seed", type=int, default=seed,
                       help="simulation RNG seed")
    if nodes is not None:
        p.add_argument("--nodes", type=int, default=nodes,
                       help="simulated node count")
        p.add_argument("--num-nodes", dest="nodes", type=int,
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    if jobs is not None:
        p.add_argument("--jobs", type=int, default=jobs,
                       help="worker processes (1 = run in-process)")
    if partitions:
        p.add_argument("--partitions", type=int, default=None, metavar="P",
                       help="run the partitioned PDES engine with P worker "
                       "processes (default: serial, or "
                       "$REPRO_SIM_PARTITIONS); results are bit-identical "
                       "to serial execution")
        p.add_argument("--window-batch", type=int, default=None, metavar="K",
                       help="sync windows per coordinator round-trip for "
                       "--partitions (default: the batched protocol's "
                       "PartitionConfig.window_batch; 1 = classic "
                       "per-window protocol)")
    return p


def _resolve_partitions(args):
    """Combine ``--partitions``/``--window-batch`` into the one
    ``partitions=`` value every API layer accepts (``None``, an int, or
    a :class:`~repro.config.PartitionConfig`)."""
    partitions = getattr(args, "partitions", None)
    batch = getattr(args, "window_batch", None)
    if batch is None:
        return partitions
    from repro.config import PartitionConfig
    from repro.errors import ConfigError

    if partitions is None:
        raise ConfigError("--window-batch requires --partitions")
    return PartitionConfig(partitions=partitions, window_batch=batch)


def _param_value(text: str):
    """Parse a workload-parameter value: int, float, bool, size, or str.

    ``16`` → int, ``5e-6`` → float, ``true``/``false`` → bool, ``64K`` →
    bytes, anything else (``stencil``, ``allreduce``) stays a string.
    """
    t = text.strip()
    if t.lower() in ("true", "false"):
        return t.lower() == "true"
    try:
        return int(t)
    except ValueError:
        pass
    try:
        return float(t)
    except ValueError:
        pass
    try:
        return _size(t)
    except argparse.ArgumentTypeError:
        pass
    return t


def _workload_param_flags() -> dict:
    """Union of every registered workload's parameters, for the ``run``
    verb: ``{field_name: one_line_doc}`` (excluding the common flags).

    ``run`` exposes one ``--flag`` per name; which of them a given
    workload accepts is validated by the workload's own parameter schema,
    so a wrong flag produces the registry's "does not accept" error
    listing the valid set.
    """
    from repro.workloads import workload_specs

    flags: dict = {}
    for spec in workload_specs():
        # param_docs (not params()) so listing flags never imports the
        # simulator — the docs are literal registration metadata.
        for name, doc in spec.param_docs:
            if name in ("num_nodes", "seed"):
                continue
            flags.setdefault(name, doc)
    return flags


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Improving the Scaling of an "
        "Asynchronous Many-Task Runtime with a Lightweight Communication "
        "Engine' (ICPP 2023).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.faults.plans import FAULT_PLANS
    from repro.workloads import workload_names

    rn = sub.add_parser(
        "run",
        help="run any registered workload once and print its result "
        "(see docs/workloads.md for the scenario catalog)",
        parents=[_common_flags(backend="lci", seed=0, partitions=True)],
    )
    rn.add_argument("workload", choices=list(workload_names()),
                    help="which registered workload to run")
    rn.add_argument("--nodes", type=int, default=None,
                    help="simulated node count (default: the workload's)")
    rn.add_argument("--num-nodes", dest="nodes", type=int,
                    default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    rn.add_argument("--faults", metavar="PLAN", default=None,
                    choices=sorted(FAULT_PLANS),
                    help="run under a named fault plan")
    for name, doc in sorted(_workload_param_flags().items()):
        rn.add_argument(f"--{name.replace('_', '-')}", dest=name,
                        type=_param_value, default=argparse.SUPPRESS,
                        metavar="V", help=doc)

    wl = sub.add_parser(
        "workloads",
        help="list the registered workloads (name, description, parameters)",
    )
    wl.add_argument("--params", action="store_true",
                    help="also list each workload's parameters and defaults")

    pp = sub.add_parser("pingpong", help="ping-pong bandwidth (Fig. 2)",
                        parents=[_common_flags(backend="lci", seed=0, nodes=2)])
    pp.add_argument("--fragment", type=_size, default=_size("128K"))
    pp.add_argument("--total", type=_size, default=None, help="bytes per iteration")
    pp.add_argument("--streams", type=int, default=1)
    pp.add_argument("--iterations", type=int, default=6)
    pp.add_argument("--no-sync", action="store_true")

    ov = sub.add_parser("overlap", help="compute/comm overlap (Fig. 3)",
                        parents=[_common_flags(backend="lci", seed=0, nodes=2)])
    ov.add_argument("--fragment", type=_size, default=_size("512K"))
    ov.add_argument("--total", type=_size, default=None)

    hc = sub.add_parser("hicma", help="TLR Cholesky (Fig. 4/5)",
                        parents=[_common_flags(backend="lci", seed=0, nodes=4,
                                               partitions=True)])
    hc.add_argument("--matrix", type=int, default=None,
                    help="matrix dimension N (default 36,000, or 360,000 "
                    "under REPRO_PAPER_SCALE=1)")
    hc.add_argument("--tile", type=int, default=None,
                    help="tile size b (default 1200, or 2400 under "
                    "REPRO_PAPER_SCALE=1)")
    hc.add_argument("--mt-activate", action="store_true",
                    help="workers send ACTIVATEs directly (§6.4.3)")
    hc.add_argument("--native-put", action="store_true",
                    help="LCI one-sided put (§7 future work)")
    hc.add_argument("--json", metavar="PATH", default=None,
                    help="also dump the result as JSON")
    hc.add_argument("--progress", action="store_true",
                    help="print run-progress heartbeats to stderr (tasks "
                    "done, events/s, RSS, ETA) — recommended with "
                    "REPRO_PAPER_SCALE=1")
    hc.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="abort the run after this much wall-clock time "
                    "with a diagnostic snapshot (run guard)")
    hc.add_argument("--max-events", type=int, default=None, metavar="N",
                    help="abort the run after N kernel events with a "
                    "diagnostic snapshot (run guard)")

    np_ = sub.add_parser("netpipe", help="raw fabric ping-pong baseline")
    np_.add_argument("sizes", nargs="*", type=_size,
                     default=[_size(s) for s in ("4K", "64K", "1M", "8M")])

    cp = sub.add_parser("compare", help="MPI vs LCI ping-pong side by side",
                        parents=[_common_flags(seed=0)])
    cp.add_argument("--fragment", type=_size, default=_size("128K"))
    cp.add_argument("--total", type=_size, default=None)

    sw = sub.add_parser(
        "sweep",
        help="run a named experiment grid through the parallel, cached "
        "sweep engine and print its figure table",
        parents=[_common_flags(jobs=1, partitions=True)],
    )
    sw.add_argument("grid", choices=["fig4", "fig5", "pingpong", "taskbench"],
                    help="which experiment grid to run")
    sw.add_argument("--no-cache", action="store_true",
                    help="simulate every point, ignore the result cache")
    sw.add_argument("--cache-dir", metavar="PATH", default=None,
                    help="result cache root (default: .repro-cache/sweep "
                    "or $REPRO_SWEEP_CACHE_DIR)")
    sw.add_argument("--cache-stats", action="store_true",
                    help="print cache statistics and exit")
    sw.add_argument("--cache-clear", action="store_true",
                    help="delete every cached entry and exit")
    sw.add_argument("--retries", type=int, default=1,
                    help="retry budget per failing point")
    sw.add_argument("--fragments", nargs="*", type=_size, default=None,
                    help="pingpong grid: fragment sizes (e.g. 32K 512K 2M)")
    sw.add_argument("--total", type=_size, default=None,
                    help="pingpong grid: bytes per iteration")
    sw.add_argument("--streams", type=int, default=1,
                    help="pingpong grid: concurrent streams")
    sw.add_argument("--progress", action="store_true",
                    help="print one line per sweep point to stderr as "
                    "points execute")
    sw.add_argument("--journal", metavar="PATH", default=None,
                    help="write-ahead journal for crash-safe resumption; "
                    "SIGINT/SIGTERM flush it and print a resume hint")
    sw.add_argument("--resume", action="store_true",
                    help="replay the --journal (and cache) first, skipping "
                    "points already completed by an interrupted run")
    sw.add_argument("--out", metavar="PATH", default=None,
                    help="atomically write the sweep outcome (records, keys, "
                    "counts) as canonical JSON")
    sw.add_argument("--heartbeat-timeout", type=float, default=30.0,
                    metavar="SECONDS",
                    help="terminate and retry a worker silent for this long "
                    "on one point (parallel sweeps)")

    va = sub.add_parser("validate", help="simulator self-checks vs closed forms")
    va.add_argument("--size", type=_size, default=_size("1M"))

    from repro.explore.scenarios import SCENARIO_KINDS

    ex = sub.add_parser(
        "explore",
        help="explore alternative schedules of a scenario and check "
        "protocol invariants (quiescence, matching, deadlock, invariance)",
        parents=[_common_flags(backend="lci", seed=0, nodes=2, jobs=1,
                               partitions=True)],
    )
    ex.add_argument("scenario", nargs="?", choices=list(SCENARIO_KINDS),
                    default="pingpong",
                    help="which workload scenario to explore")
    ex.add_argument("--max-schedules", type=int, default=50,
                    help="total schedule budget (baseline + alternatives)")
    ex.add_argument("--budget", type=int, default=24,
                    help="choice points each run may perturb")
    mode = ex.add_mutually_exclusive_group()
    mode.add_argument("--dfs", action="store_true",
                      help="bounded DFS over decision prefixes (default)")
    mode.add_argument("--walk", action="store_true",
                      help="seeded random walks instead of DFS")
    ex.add_argument("--walk-seed", type=int, default=0,
                    help="base seed for --walk runs")
    ex.add_argument("--faults", metavar="PLAN", default=None,
                    choices=sorted(FAULT_PLANS),
                    help="explore under a named fault plan")
    ex.add_argument("--replay", metavar="FILE", default=None,
                    help="replay a schedule.json instead of exploring")
    ex.add_argument("--out", metavar="PATH", default="schedule.json",
                    help="where to write the failing schedule, if any")
    ex.add_argument("--progress", action="store_true",
                    help="print one line per explored schedule to stderr")

    te = sub.add_parser(
        "trace-export",
        help="run a small TLR Cholesky job with observability on and export "
        "the event trace (Chrome about://tracing JSON or CSV)",
        parents=[_common_flags(backend="lci", seed=0, nodes=2)],
    )
    te.add_argument("--matrix", type=int, default=7200)
    te.add_argument("--tile", type=int, default=1200)
    te.add_argument("--format", choices=["chrome", "csv"], default="chrome")
    te.add_argument("--out", metavar="PATH", default=None,
                    help="output file (default: trace.json / trace.csv)")

    ch = sub.add_parser(
        "chaos",
        help="run a workload under a named fault plan and report "
        "per-fault-kind injection/recovery counts (default: a small "
        "TLR Cholesky job)",
        parents=[_common_flags(backend="both", seed=0, nodes=2,
                               partitions=True,
                               backend_choices=("mpi", "lci", "both"))],
    )
    ch.add_argument("--plan", choices=sorted(FAULT_PLANS), default="chaos")
    ch.add_argument("--workload", choices=list(workload_names()),
                    default="hicma",
                    help="which registered workload to run under the plan")
    ch.add_argument("--matrix", type=int, default=7200,
                    help="hicma workload only: matrix dimension")
    ch.add_argument("--tile", type=int, default=1200,
                    help="hicma workload only: tile size")

    sub.add_parser("info", help="print calibrated platform constants")
    return parser


def _progress_bus(args, kinds):
    """A bus printing the given progress kinds to stderr, or the null bus.

    Backs the ``--progress`` flag of the sweep/explore verbs: both engines
    emit wall-clock progress events unconditionally; the flag merely
    attaches a :class:`~repro.obs.sinks.StreamSink` so they become visible.
    """
    from repro.obs import NULL_BUS, ObsBus, StreamSink

    if not getattr(args, "progress", False):
        return NULL_BUS
    bus = ObsBus(memory=False)
    bus.attach(StreamSink(stream=sys.stderr, kinds=kinds))
    return bus


def cmd_run(args) -> int:
    """Run one registered workload through :class:`~repro.api.Experiment`."""
    from repro.api import Experiment
    from repro.errors import ConfigError

    params = {
        name: getattr(args, name)
        for name in _workload_param_flags()
        if hasattr(args, name)
    }
    try:
        result = Experiment(
            workload=args.workload,
            backend=args.backend,
            nodes=args.nodes,
            seed=args.seed,
            faults=args.faults,
            partitions=_resolve_partitions(args),
            **params,
        ).run()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    for key in ("flow_latency",):
        stats = getattr(result, key, None)
        if stats and stats.get("mean"):
            print(f"  mean e2e latency: {stats['mean'] * 1e6:.2f} us")
    return 0


def cmd_workloads(args) -> int:
    """List every registered workload, optionally with its parameters."""
    from repro.workloads import workload_specs

    for spec in workload_specs():
        print(f"{spec.name:<12} {spec.description}")
        if args.params:
            for param in spec.params():
                default = "required" if param.required else repr(param.default)
                print(f"    --{param.name.replace('_', '-'):<22} "
                      f"[{default}] {param.doc}")
    return 0


def cmd_pingpong(args) -> int:
    """Run one ping-pong configuration and print its bandwidth."""
    from repro.bench.pingpong import PingPongConfig, run_pingpong_benchmark

    cfg = PingPongConfig(
        fragment_size=args.fragment,
        streams=args.streams,
        total_bytes=args.total,
        iterations=args.iterations,
        sync=not args.no_sync,
        num_nodes=args.nodes,
        seed=args.seed,
    )
    result = run_pingpong_benchmark(args.backend, cfg)
    print(result.summary())
    print(f"  window          : {cfg.window} fragments")
    print(f"  mean e2e latency: {result.flow_latency.get('mean', 0) * 1e6:.2f} us")
    return 0


def cmd_overlap(args) -> int:
    """Run one overlap configuration against the analytic bounds."""
    from repro.bench.overlap import (
        OverlapConfig,
        no_overlap_flops,
        roofline_flops,
        run_overlap_benchmark,
    )
    from repro.config import scaled_platform

    platform = scaled_platform(num_nodes=args.nodes)
    cfg = OverlapConfig(fragment_size=args.fragment, total_bytes=args.total,
                        num_nodes=args.nodes, seed=args.seed)
    result = run_overlap_benchmark(args.backend, cfg, platform)
    print(result.summary())
    print(f"  roofline  : {roofline_flops(cfg, platform) / 1e12:.3f} TFLOP/s")
    print(f"  no overlap: {no_overlap_flops(cfg, platform) / 1e12:.3f} TFLOP/s")
    return 0


def _report_abort(exc) -> int:
    """Print a structured guard-abort report; the ``hicma`` failure path.

    The run died on a budget (:class:`~repro.errors.RunBudgetExceeded`) or
    live-lock (:class:`~repro.errors.NoProgressError`); report *where* it
    stood — salvaged partial stats plus the diagnostic snapshot — instead
    of a bare traceback.
    """
    print(f"run aborted: {exc}", file=sys.stderr)
    snap = exc.snapshot
    if snap:
        done = snap.get("tasks_done")
        total = snap.get("tasks_total")
        print(f"  progress : {done}/{total} tasks, "
              f"sim t={snap.get('sim_now', 0.0):.6f}s, "
              f"{snap.get('events_processed', 0):,} events",
              file=sys.stderr)
        if snap.get("quiescence"):
            print(f"  pending  : {snap['quiescence']}", file=sys.stderr)
    if exc.partial is not None:
        print("  partial stats:", file=sys.stderr)
        for line in exc.partial.summary().splitlines():
            print(f"    {line}", file=sys.stderr)
    return 3


def cmd_hicma(args) -> int:
    """Run one simulated TLR Cholesky configuration."""
    from repro.errors import ConfigError, SupervisionError
    from repro.bench.hicma_bench import (
        HicmaConfig,
        default_matrix_size,
        run_hicma_benchmark,
    )
    from repro.config import paper_scale_enabled, scaled_platform
    from repro.runtime.context import ParsecContext
    from repro.hicma.dag import build_tlr_cholesky_graph
    from repro.hicma.ranks import RankModel
    from repro.hicma.timing import KernelTimeModel

    # Paper scale flips the *defaults*; explicit --matrix/--tile always win.
    # Tile 2400 is the tractable paper-scale sweet spot (NT=150).
    matrix = args.matrix if args.matrix is not None else default_matrix_size()
    tile = args.tile if args.tile is not None else (
        2400 if paper_scale_enabled() else 1200
    )
    cfg = HicmaConfig(
        matrix_size=matrix,
        tile_size=tile,
        num_nodes=args.nodes,
        multithreaded_activate=args.mt_activate,
        seed=args.seed,
    )
    progress = None
    if args.progress:
        from repro.obs.progress import ProgressReporter

        progress = ProgressReporter(stream=sys.stderr)
    guards = None
    if args.deadline is not None or args.max_events is not None:
        from repro.supervise import RunGuards

        guards = RunGuards(deadline=args.deadline, max_events=args.max_events)
    try:
        partitions = _resolve_partitions(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if partitions is None:
        from repro.config import default_partitions

        partitions = default_partitions()
    if args.native_put:
        if partitions is not None:
            print(
                "error: --native-put drives the context directly and does "
                "not support --partitions",
                file=sys.stderr,
            )
            return 2
        platform = scaled_platform(num_nodes=cfg.num_nodes, cores_per_node=8)
        graph = build_tlr_cholesky_graph(
            cfg.nt, cfg.tile_size, num_nodes=cfg.num_nodes,
            rank_model=RankModel(cfg.nt, cfg.tile_size, cfg.maxrank),
            time_model=KernelTimeModel(platform.compute),
        )
        ctx = ParsecContext(
            platform, backend="lci", native_put=True,
            multithreaded_activate=args.mt_activate, seed=args.seed,
        )
        try:
            stats = ctx.run(graph, until=36_000.0, progress=progress,
                            guards=guards)
        except SupervisionError as exc:
            return _report_abort(exc)
        print(f"hicma[lci, native put] N={cfg.matrix_size} tile={cfg.tile_size} "
              f"nodes={cfg.num_nodes}: TTS={stats.makespan:.3f}s "
              f"e2e={stats.mean_flow_latency * 1e3:.2f}ms")
        return 0
    try:
        result = run_hicma_benchmark(args.backend, cfg, progress=progress,
                                     guards=guards, partitions=partitions)
    except SupervisionError as exc:
        return _report_abort(exc)
    print(result.summary())
    print(f"  tasks            : {result.tasks}")
    print(f"  wire traffic     : {result.wire_bytes / 1e6:.1f} MB")
    print(f"  worker utilization: {result.worker_utilization:.1%}")
    if args.json:
        from repro.analysis.export import dump_results

        dump_results(result, args.json, title="hicma")
        print(f"  wrote {args.json}")
    return 0


def cmd_netpipe(args) -> int:
    """Print the raw fabric ping-pong bandwidth for each size."""
    from repro.network.netpipe import netpipe_bandwidth_curve
    from repro.units import fmt_size, gbit_per_s

    for size, bw in netpipe_bandwidth_curve(args.sizes):
        print(f"  {fmt_size(size):>10}: {gbit_per_s(bw):7.2f} Gbit/s")
    return 0


def cmd_compare(args) -> int:
    """Run MPI and LCI side by side on the ping-pong benchmark."""
    from repro.api import BackendKind, Experiment
    from repro.bench.report import Comparison

    results = {
        kind.value: Experiment(
            workload="pingpong",
            backend=kind,
            seed=args.seed,
            fragment_size=args.fragment,
            total_bytes=args.total,
        ).run()
        for kind in (BackendKind.MPI, BackendKind.LCI)
    }
    comp = Comparison(
        title=f"ping-pong @ fragment={args.fragment} B",
        results=results,
        metric="bandwidth_gbit",
        higher_is_better=True,
    )
    print(comp.summary())
    return 0


def cmd_explore(args) -> int:
    """Explore alternative schedules of a scenario, or replay one."""
    from repro.explore import (
        ExploreConfig,
        default_scenario,
        replay_schedule,
        run_explore,
        write_schedule,
    )

    if args.partitions is not None or args.window_batch is not None:
        print(
            "error: the schedule explorer drives event interleavings "
            "in-process and does not support --partitions/--window-batch",
            file=sys.stderr,
        )
        return 2
    if args.replay:
        scenario, record = replay_schedule(args.replay)
        violations = record["violations"]
        status = "violated" if violations else "clean"
        print(f"replay[{scenario.label()}]: {status}, "
              f"digest={record['digest']}")
        for kind, detail in violations:
            print(f"  [{kind}] {detail}")
        return 1 if violations else 0

    scenario = default_scenario(
        args.scenario, backend=args.backend, nodes=args.nodes,
        seed=args.seed, fault_plan=args.faults,
    )
    config = ExploreConfig(
        max_schedules=args.max_schedules,
        budget=args.budget,
        mode="walk" if args.walk else "dfs",
        walk_seed=args.walk_seed,
        jobs=args.jobs,
    )
    obs = _progress_bus(
        args, ("explore_start", "explore_schedule", "explore_violation")
    )
    outcome = run_explore(scenario, config, obs=obs)
    print(outcome.summary())
    if outcome.ok:
        return 0
    decisions = (outcome.shrunk if outcome.shrunk is not None
                 else list(outcome.findings[0].decisions))
    doc = write_schedule(args.out, scenario, decisions, config.budget,
                         violations=outcome.findings[0].violations)
    print(f"  wrote {args.out} (key {doc['key'][:12]}…), replay with: "
          f"python -m repro explore --replay {args.out}")
    return 1


def cmd_trace_export(args) -> int:
    """Run a small HiCMA configuration with the obs bus on and export it."""
    from repro.config import scaled_platform
    from repro.hicma.dag import build_tlr_cholesky_graph
    from repro.hicma.ranks import RankModel
    from repro.hicma.timing import KernelTimeModel
    from repro.obs import ChromeTraceSink, CsvSink
    from repro.runtime.context import ParsecContext

    nt = max(2, args.matrix // args.tile)
    platform = scaled_platform(num_nodes=args.nodes, cores_per_node=4)
    graph = build_tlr_cholesky_graph(
        nt, args.tile, num_nodes=args.nodes,
        rank_model=RankModel(nt, args.tile),
        time_model=KernelTimeModel(platform.compute),
    )
    ctx = ParsecContext(platform, backend=args.backend, observability=True,
                        seed=args.seed)
    stats = ctx.run(graph, until=36_000.0)
    sink = ChromeTraceSink() if args.format == "chrome" else CsvSink()
    ctx.obs.export(sink)
    out = args.out or ("trace.json" if args.format == "chrome" else "trace.csv")
    sink.write(out)
    n_events = len(ctx.obs.memory)
    print(f"trace-export[{args.backend}] N={args.matrix} tile={args.tile} "
          f"nodes={args.nodes}: TTS={stats.makespan:.3f}s "
          f"{stats.tasks_executed} tasks, {n_events} events")
    for name, total in sorted(stats.obs_counters.items()):
        print(f"  {name:<28} {total}")
    print(f"  wrote {out}")
    return 0


def cmd_chaos(args) -> int:
    """Run TLR Cholesky under a fault plan; print the resilience report."""
    from repro.bench.chaos import ChaosConfig, run_chaos
    from repro.faults.plans import fault_plan

    if args.partitions is not None or args.window_batch is not None:
        print(
            "error: fault injection consumes RNG streams in global send "
            "order and is incompatible with --partitions/--window-batch",
            file=sys.stderr,
        )
        return 2
    cfg = ChaosConfig(
        plan_name=args.plan,
        plan=fault_plan(args.plan),
        matrix_size=args.matrix,
        tile_size=args.tile,
        num_nodes=args.nodes,
        seed=args.seed,
        workload=args.workload,
    )
    backends = ["mpi", "lci"] if args.backend == "both" else [args.backend]
    ok = True
    for backend in backends:
        result = run_chaos(backend, cfg)
        print(result.summary())
        ok = ok and result.numerics_ok
    return 0 if ok else 1


def cmd_info(args) -> int:
    """Dump every calibrated platform constant."""
    import dataclasses

    from repro.config import expanse_platform

    platform = expanse_platform()
    for section in ("network", "mpi", "lci", "runtime", "compute"):
        print(f"[{section}]")
        for f in dataclasses.fields(getattr(platform, section)):
            print(f"  {f.name} = {getattr(getattr(platform, section), f.name)!r}")
    return 0


def cmd_sweep(args) -> int:
    """Run a named experiment grid through the sweep engine."""
    from repro.analysis.sweep_tables import render_outcome
    from repro.config import SweepConfig
    from repro.errors import ConfigError, SweepInterrupted
    from repro.sweep import ResultCache, named_grid, run_sweep

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.cache_stats:
        print(ResultCache(args.cache_dir).stats().summary())
        return 0
    if args.cache_clear:
        removed = ResultCache(args.cache_dir).clear()
        print(f"cleared {removed} cached entries")
        return 0

    kwargs = {}
    if args.grid == "pingpong":
        kwargs = {
            "fragments": args.fragments,
            "total_bytes": args.total,
            "streams": args.streams,
        }
    spec = named_grid(args.grid, **kwargs)
    try:
        cli_partitions = _resolve_partitions(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if cli_partitions is not None:
        # Stamp the engine selection onto every point.  Workloads without
        # accepts_partitions fail their points loudly (ConfigError) rather
        # than silently running serial; cache keys change only when the
        # flag is actually set.
        import dataclasses as _dc

        from repro.sweep import SweepSpec

        spec = SweepSpec(
            name=spec.name,
            points=tuple(
                _dc.replace(p, partitions=cli_partitions)
                for p in spec.points
            ),
        )
    config = SweepConfig(
        jobs=args.jobs,
        cache_enabled=not args.no_cache,
        retries=args.retries,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    obs = _progress_bus(args, ("sweep_start", "sweep_point", "sweep_end"))
    try:
        outcome = run_sweep(spec, config, cache=cache, obs=obs,
                            journal=args.journal, resume=args.resume)
    except SweepInterrupted as exc:
        # run_sweep already flushed the journal and printed the resume hint.
        print(f"sweep interrupted: {exc}", file=sys.stderr)
        return 130
    if args.out:
        outcome.save(args.out)
        print(f"wrote {args.out}")
    print(render_outcome(outcome))
    print(outcome.summary())
    return 0 if outcome.failed == 0 else 1


def cmd_validate(args) -> int:
    """Run the simulator's closed-form self-checks."""
    from repro.analysis.validation import (
        validate_compute_bound_makespan,
        validate_netpipe_bandwidth,
        validate_netpipe_latency,
    )

    results = [
        validate_netpipe_latency(args.size),
        validate_netpipe_bandwidth(args.size),
        validate_compute_bound_makespan(),
    ]
    for r in results:
        print(r.summary())
    return 0 if all(r.ok for r in results) else 1


_COMMANDS = {
    "run": cmd_run,
    "workloads": cmd_workloads,
    "pingpong": cmd_pingpong,
    "overlap": cmd_overlap,
    "hicma": cmd_hicma,
    "netpipe": cmd_netpipe,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "validate": cmd_validate,
    "explore": cmd_explore,
    "trace-export": cmd_trace_export,
    "chaos": cmd_chaos,
    "info": cmd_info,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
