"""Calibration constants and platform configuration.

Every time constant used by the simulation lives here, grouped into frozen
dataclasses.  The values are calibrated once against the paper's anchor
points (Table 1 hardware, Fig. 2a half-bandwidth granularities, Fig. 4b
latency ranges) and then frozen; all benchmarks share the same set.

Calibration notes
-----------------
The paper's Fig. 2a implies an effective *serialized per-fragment software
cost* on the communication path of roughly 17 µs for the MPI backend (peak
bandwidth is lost below ~128 KiB fragments: 128 KiB / 62.5 Gbit/s ≈ 16.8 µs)
and roughly 6 µs for the LCI backend (45.25 KiB / 64.1 Gbit/s ≈ 5.8 µs),
a ratio of ≈2.8× — the paper's "2.83 times smaller tasks at similar
efficiency".  The per-operation costs below reproduce those aggregates when
the full protocol message sequence of §4.2/§5.3 executes:

- MPI path per fragment (single comm thread does *both* progress and
  callbacks): ACTIVATE pack+send, ACTIVATE callback (unpack + dependency
  walk), GET DATA send + callback, put handshake send + callback, posted
  receive, data send/recv completion callbacks, plus ``MPI_Testsome``
  polling of the ~35-entry request array.
- LCI path per fragment: the progress thread absorbs matching, completion
  draining and receive-queue refill, so the comm thread only executes
  callbacks popped from the two FIFO queues; the two threads pipeline.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field, replace

from repro.codec import DictCodec
from repro.errors import ConfigError
from repro.units import KiB, MiB, US, NS, bytes_per_s_from_gbit

__all__ = [
    "NetworkConfig",
    "MpiCosts",
    "LciCosts",
    "RuntimeCosts",
    "ComputeConfig",
    "PlatformConfig",
    "FaultConfig",
    "SweepConfig",
    "PartitionConfig",
    "as_partition_config",
    "expanse_platform",
    "scaled_platform",
    "paper_scale_enabled",
    "default_partitions",
]


#: Accepted spellings of the REPRO_PAPER_SCALE switch (after strip+casefold).
_PAPER_SCALE_TRUE = frozenset({"1", "true", "yes", "on"})
_PAPER_SCALE_FALSE = frozenset({"", "0", "false", "no", "off"})


def paper_scale_enabled() -> bool:
    """True when the environment requests full paper-scale experiments.

    The ``REPRO_PAPER_SCALE`` value is stripped and case-folded, so
    ``"False"``, ``"NO"`` and ``" 0 "`` all read as disabled; anything
    outside the recognised truthy/falsy spellings raises
    :class:`~repro.errors.ConfigError` rather than silently enabling a
    multi-hour experiment sweep.
    """
    raw = os.environ.get("REPRO_PAPER_SCALE", "0")
    value = raw.strip().casefold()
    if value in _PAPER_SCALE_TRUE:
        return True
    if value in _PAPER_SCALE_FALSE:
        return False
    raise ConfigError(
        f"REPRO_PAPER_SCALE={raw!r} not understood; use one of "
        f"{sorted(_PAPER_SCALE_TRUE)} or {sorted(_PAPER_SCALE_FALSE - {''})}"
    )


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


def _no_negative_numbers(cfg) -> None:
    """Reject negative numeric fields (times, sizes, rates are all >= 0)."""
    cls = type(cfg).__name__
    for f in dataclasses.fields(cfg):
        v = getattr(cfg, f.name)
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            _require(v >= 0, f"{cls}.{f.name} must be >= 0 (got {v!r})")


@dataclass(frozen=True)
class NetworkConfig(DictCodec):
    """Fabric model parameters (LogGP-style), per Table 1 of the paper.

    Expanse nodes have 2× HDR InfiniBand links at 50 Gbit/s each, giving
    100 Gbit/s per direction per node; the topology is a hybrid fat-tree.
    """

    #: NIC injection/ejection bandwidth, bytes/s, per direction (full duplex).
    bandwidth: float = bytes_per_s_from_gbit(100.0)
    #: Base end-to-end wire latency for a minimal message (s).
    wire_latency: float = 1.1 * US
    #: Additional latency per switch hop (s).
    hop_latency: float = 150 * NS
    #: Inter-message gap at the NIC (s) — bounds achievable message rate.
    message_gap: float = 60 * NS
    #: Per-byte DMA/SerDes time beyond line rate is folded into `bandwidth`.
    #: MTU used to segment very large transfers for fair link sharing (bytes).
    mtu: int = 4096
    #: Number of switch levels in the fat tree (2 ⇒ leaf + spine).
    fat_tree_levels: int = 2
    #: Nodes per leaf switch.
    nodes_per_leaf: int = 16

    def __post_init__(self) -> None:
        _no_negative_numbers(self)
        _require(self.bandwidth > 0, f"NetworkConfig.bandwidth must be > 0 (got {self.bandwidth!r})")
        _require(self.mtu >= 1, f"NetworkConfig.mtu must be >= 1 (got {self.mtu!r})")
        _require(
            self.fat_tree_levels >= 1,
            f"NetworkConfig.fat_tree_levels must be >= 1 (got {self.fat_tree_levels!r})",
        )
        _require(
            self.nodes_per_leaf >= 1,
            f"NetworkConfig.nodes_per_leaf must be >= 1 (got {self.nodes_per_leaf!r})",
        )

    def latency(self, hops: int) -> float:
        """End-to-end base latency for a path with ``hops`` switch hops."""
        return self.wire_latency + hops * self.hop_latency


@dataclass(frozen=True)
class MpiCosts(DictCodec):
    """Per-operation CPU costs of the simulated MPI library (Open MPI/UCX).

    These are the costs *charged to the calling thread*; they model the
    software path through the MPI library, PML, and UCX.
    """

    #: Overhead of an eager send (MPI_Send below the rendezvous threshold).
    eager_send: float = 2.0 * US
    #: Overhead of posting a non-blocking send/receive.
    post_request: float = 1.8 * US
    #: Cost of matching one incoming message against the posted-receive queue.
    match: float = 1.0 * US
    #: Additional matching cost per queue entry walked (posted or unexpected).
    #: Under active-message floods the unexpected queue grows and matching
    #: degrades superlinearly — a well-documented MPI pathology that the
    #: 5-persistent-receives-per-tag design of §4.2.1 exposes.
    match_per_queue_entry: float = 60 * NS
    #: Fixed cost of an MPI_Testsome call.
    testsome_base: float = 0.6 * US
    #: Incremental Testsome cost per polled (incomplete) request.
    testsome_per_request: float = 60 * NS
    #: Eager→rendezvous protocol switch threshold (bytes), UCX-like.
    rendezvous_threshold: int = 16 * KiB
    #: CPU cost of an RTS/CTS rendezvous control message at each side.
    rendezvous_ctrl: float = 1.2 * US
    #: Per-byte copy cost for eager messages (through bounce buffers).
    eager_copy_per_byte: float = 0.05 * NS
    #: Cost to re-enable (MPI_Start) a persistent receive.
    restart_persistent: float = 0.8 * US
    # -- MPI RMA (dynamic windows), for the §4.2.2 alternative put path --
    #: MPI_Win_attach on a dynamic window: registration + window sync.
    #: Dynamic-window attach/detach is the documented weak point of MPI RMA
    #: (Schuchart et al., "Quo Vadis MPI RMA", paper ref [25]).
    win_attach: float = 3.0 * US
    #: MPI_Win_detach.
    win_detach: float = 2.0 * US
    #: Posting an MPI_Put (true RDMA, low software cost).
    rma_put_post: float = 0.6 * US
    #: MPI_Win_flush bookkeeping (plus waiting for remote completion).
    rma_flush: float = 1.0 * US

    def __post_init__(self) -> None:
        _no_negative_numbers(self)


@dataclass(frozen=True)
class LciCosts(DictCodec):
    """Per-operation CPU costs of the simulated LCI library."""

    #: Maximum size of an Immediate (inline) message — about a cache line.
    immediate_max: int = 64
    #: Maximum size of a Buffered (medium, copied) message — paper: ~12 KiB.
    buffered_max: int = 12 * KiB
    #: Overhead of an Immediate send.
    immediate_send: float = 0.25 * US
    #: Overhead of a Buffered send (plus per-byte copy below).
    buffered_send: float = 0.6 * US
    #: Overhead of posting a Direct (RDMA) send or receive.
    direct_post: float = 0.85 * US
    #: Per-byte copy cost into pre-registered buffers (Buffered protocol).
    copy_per_byte: float = 0.05 * NS
    #: Fixed cost of one LCI_progress poll iteration.
    progress_poll: float = 0.15 * US
    #: Cost of draining one completion from a hardware queue.
    completion_drain: float = 0.20 * US
    #: Cost of dispatching a user handler from the progress engine.
    handler_dispatch: float = 0.11 * US
    #: Cost of a completion-queue pop by a consumer thread.
    cq_pop: float = 0.30 * US
    #: Cost of refilling one hardware receive descriptor.
    refill_recv: float = 0.05 * US
    #: Number of pre-posted medium receive packets per device (back-pressure
    #: pool; exhaustion yields LCI_ERR_RETRY).
    packet_pool_size: int = 256
    #: Number of outstanding direct (RDMA) operations supported in hardware.
    direct_slots: int = 64

    def __post_init__(self) -> None:
        _no_negative_numbers(self)
        _require(
            self.packet_pool_size >= 1,
            f"LciCosts.packet_pool_size must be >= 1 (got {self.packet_pool_size!r})",
        )
        _require(
            self.direct_slots >= 1,
            f"LciCosts.direct_slots must be >= 1 (got {self.direct_slots!r})",
        )
        _require(
            self.buffered_max >= self.immediate_max,
            f"LciCosts.buffered_max ({self.buffered_max!r}) must be >= "
            f"immediate_max ({self.immediate_max!r})",
        )


@dataclass(frozen=True)
class RuntimeCosts(DictCodec):
    """Per-operation CPU costs of the PaRSEC-like runtime layer."""

    #: Packing one dataflow into an ACTIVATE message.
    activate_pack_per_flow: float = 0.30 * US
    #: ACTIVATE callback: unpack one activation and walk local descendants.
    #: This is the "long active-message callback" of §4.3.
    activate_unpack_per_flow: float = 1.6 * US
    #: Handling a GET DATA message (locate data, prepare put).
    getdata_handle: float = 0.8 * US
    #: Generic completion-callback trampoline cost.
    callback_exec: float = 0.20 * US
    #: Scheduler: pop a ready task / push a new ready task.
    sched_op: float = 0.20 * US
    #: Fixed cost to launch a task body on a worker.
    task_spawn: float = 0.45 * US
    #: Size of an ACTIVATE message per carried dataflow (bytes).
    activate_bytes_per_flow: int = 256
    #: Size of a GET DATA control message (bytes).
    getdata_bytes: int = 128
    #: Size of a put handshake message, excluding eager payload (bytes).
    handshake_bytes: int = 160
    #: MPI backend: persistent receives pre-posted per registered AM tag.
    mpi_recvs_per_tag: int = 5
    #: MPI backend: max concurrently polled data transfers (§4.2.2).
    mpi_max_transfers: int = 30
    #: LCI backend: AMs popped per fairness round from the AM FIFO (§5.3.4).
    lci_am_batch: int = 5
    #: LCI backend: eager put payload limit — data this small rides inside
    #: the handshake message itself (§5.3.3).
    lci_eager_put_max: int = 8 * KiB
    #: Penalty multiplier on comm/progress-thread costs when the thread
    #: "floats" instead of being pinned near the NIC (§6.1.2: up to +25 %
    #: mean end-to-end latency).
    floating_thread_penalty: float = 1.25


@dataclass(frozen=True)
class ComputeConfig(DictCodec):
    """Worker-core compute model."""

    #: Effective double-precision rate of one core for GEMM-like kernels
    #: (EPYC 7742 @2.25 GHz, FMA; ~80 % of peak).
    flops_per_core: float = 30e9
    #: Effective rate for low-rank (skinny) kernels — lower due to memory
    #: bound behaviour; HiCMA's LR kernels are far less compute-dense.
    lr_flops_per_core: float = 12e9


@dataclass(frozen=True)
class FaultConfig(DictCodec):
    """One deterministic fault-injection plan (see ``docs/faults.md``).

    All probabilities are per *transmission attempt* on the wire; all rates
    are events per second of **simulated** time (CI-scale runs last a few
    milliseconds, hence the large-looking defaults in the named plans).
    Seeded from :class:`repro.sim.rng.RngStreams`, so the same seed and plan
    replay bit-identically.  ``FaultConfig(enabled=False)`` — or simply not
    passing a plan — selects the NULL engine and leaves runs bit-identical
    to a faultless build.
    """

    enabled: bool = True
    # -- per-message wire faults ----------------------------------------
    #: Probability a transmission is silently lost in the network.
    drop_rate: float = 0.0
    #: Probability the network delivers an extra copy of a transmission.
    dup_rate: float = 0.0
    #: Probability a delivered payload is corrupted (checksum mismatch).
    corrupt_rate: float = 0.0
    #: Probability a transmission is delayed (reordered past later sends).
    reorder_rate: float = 0.0
    #: Maximum extra delay applied to a reordered transmission (s).
    reorder_delay: float = 20 * US
    # -- link flaps, degradation, and the circuit breaker ---------------
    #: Flap windows per second per directed route (0 = no flaps).
    flap_rate: float = 0.0
    #: Length of one flap window (s); transmissions inside it are lost.
    flap_duration: float = 60 * US
    #: Latency multiplier on a route once it has started flapping.
    degraded_latency_factor: float = 3.0
    #: Flap-window losses on one route before the circuit breaker trips
    #: and traffic re-routes via an alternate fat-tree path.
    breaker_threshold: int = 3
    # -- straggler injection --------------------------------------------
    #: Nodes whose task compute times are stretched.
    straggler_nodes: tuple = ()
    #: Compute-time multiplier for straggler nodes (>= 1).
    straggler_factor: float = 1.0
    # -- LCI packet-pool exhaustion spikes ------------------------------
    #: Pool-exhaustion spikes per second per device (0 = none).
    pool_spike_rate: float = 0.0
    #: Fraction of each packet pool confiscated during a spike.
    pool_spike_fraction: float = 0.9
    #: Length of one spike (s).
    pool_spike_duration: float = 150 * US
    # -- recovery: fabric-level retransmission --------------------------
    #: Initial retransmission timeout (s).
    rto: float = 30 * US
    #: Exponential RTO growth factor per retransmission.
    rto_backoff: float = 2.0
    #: RTO ceiling (s).
    rto_max: float = 2e-3
    #: Deterministic jitter fraction added to each RTO (avoids lockstep).
    rto_jitter: float = 0.25
    #: Retransmission budget per message before the run is declared lost.
    max_retransmits: int = 50
    # -- recovery: backend back-pressure retry backoff ------------------
    #: Exponential growth factor for LCI_ERR_RETRY-style retry delays
    #: (the baseline fixed 0.5 us backoff corresponds to factor 1).
    retry_backoff_factor: float = 2.0
    #: Ceiling on the backend retry delay (s).
    retry_max_delay: float = 16 * US
    #: Deterministic jitter fraction on backend retry delays.
    retry_jitter: float = 0.25

    def __post_init__(self) -> None:
        _no_negative_numbers(self)
        for name in ("drop_rate", "dup_rate", "corrupt_rate", "reorder_rate",
                     "pool_spike_fraction"):
            v = getattr(self, name)
            _require(0.0 <= v <= 1.0, f"FaultConfig.{name} must be in [0, 1] (got {v!r})")
        _require(
            self.degraded_latency_factor >= 1.0,
            f"FaultConfig.degraded_latency_factor must be >= 1 (got {self.degraded_latency_factor!r})",
        )
        _require(
            self.straggler_factor >= 1.0,
            f"FaultConfig.straggler_factor must be >= 1 (got {self.straggler_factor!r})",
        )
        _require(
            self.breaker_threshold >= 1,
            f"FaultConfig.breaker_threshold must be >= 1 (got {self.breaker_threshold!r})",
        )
        _require(
            self.max_retransmits >= 1,
            f"FaultConfig.max_retransmits must be >= 1 (got {self.max_retransmits!r})",
        )
        _require(self.rto > 0, f"FaultConfig.rto must be > 0 (got {self.rto!r})")
        _require(
            self.rto_backoff >= 1.0,
            f"FaultConfig.rto_backoff must be >= 1 (got {self.rto_backoff!r})",
        )
        _require(
            self.rto_max >= self.rto,
            f"FaultConfig.rto_max ({self.rto_max!r}) must be >= rto ({self.rto!r})",
        )
        _require(
            self.retry_backoff_factor >= 1.0,
            f"FaultConfig.retry_backoff_factor must be >= 1 (got {self.retry_backoff_factor!r})",
        )
        _require(
            self.retry_max_delay > 0,
            f"FaultConfig.retry_max_delay must be > 0 (got {self.retry_max_delay!r})",
        )
        for n in self.straggler_nodes:
            _require(
                isinstance(n, int) and n >= 0,
                f"FaultConfig.straggler_nodes entries must be node ranks >= 0 (got {n!r})",
            )


@dataclass(frozen=True)
class SweepConfig(DictCodec):
    """Execution policy for one :mod:`repro.sweep` run (see
    ``docs/performance.md``).

    ``jobs`` counts worker *processes*; 1 keeps everything in-process
    (bit-identical to the historical serial harnesses by construction).
    The cache is content-addressed — entries are keyed by a stable hash of
    the fully resolved point configuration plus the code version — so a
    stale entry can only be served to a byte-identical experiment.
    """

    #: Worker processes executing sweep points (1 = serial, in-process).
    jobs: int = 1
    #: Consult/populate the on-disk result cache.
    cache_enabled: bool = True
    #: Cache root; ``None`` selects ``$REPRO_SWEEP_CACHE_DIR`` or
    #: ``.repro-cache/sweep`` under the working directory.
    cache_dir: "str | None" = None
    #: Re-executions of a failed point before giving up on it.
    retries: int = 1
    #: Abort the whole sweep on the first point that exhausts its retries
    #: (``False`` records the failure and continues).
    fail_fast: bool = True
    #: Wall-clock seconds a supervised worker may stay silent (no
    #: heartbeat) on one point before it is presumed hung, terminated,
    #: and its point retried (parallel path only).
    heartbeat_timeout: float = 30.0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.jobs, int) and self.jobs >= 1,
            f"SweepConfig.jobs must be an int >= 1 (got {self.jobs!r})",
        )
        _require(
            isinstance(self.retries, int) and self.retries >= 0,
            f"SweepConfig.retries must be an int >= 0 (got {self.retries!r})",
        )
        _require(
            isinstance(self.heartbeat_timeout, (int, float))
            and self.heartbeat_timeout > 0,
            "SweepConfig.heartbeat_timeout must be > 0 "
            f"(got {self.heartbeat_timeout!r})",
        )


def default_partitions() -> "int | None":
    """The ``REPRO_SIM_PARTITIONS`` environment override, or ``None``.

    The companion of ``REPRO_SWEEP_JOBS``: where that knob sets how many
    *sweep points* run concurrently, this one sets how many partition
    worker processes one simulation shards its nodes across (see
    :mod:`repro.sim.partition`).  An unset/empty variable means "no
    override" — the experiment's explicit ``partitions=`` (or serial
    execution) wins.  A non-integer or non-positive value raises
    :class:`~repro.errors.ConfigError` rather than silently serialising.
    """
    raw = os.environ.get("REPRO_SIM_PARTITIONS", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_SIM_PARTITIONS={raw!r} is not an integer"
        ) from None
    _require(value >= 1, f"REPRO_SIM_PARTITIONS must be >= 1 (got {value})")
    return value


@dataclass(frozen=True)
class PartitionConfig(DictCodec):
    """Execution policy for one partitioned (PDES) simulation run.

    ``partitions`` counts worker *processes* the simulated nodes are
    sharded across; 1 still exercises the partitioned engine (one worker,
    useful for parity testing), while ``None`` at the API layer means
    "serial in-process execution".  The dataclass round-trips through the
    canonical-JSON codec so it can ride sweep points and job specs; sweep
    cache keys only include it when a partition count is explicitly set,
    which keeps historical keys stable (partitioned execution is
    bit-identical, so a cached serial record answers a partitioned
    request and vice versa).
    """

    #: Partition worker processes (simulated nodes are block-distributed).
    partitions: int = 1
    #: Conservative lookahead override (s); ``None`` derives the bound
    #: from the platform's LogGP link latency (see
    #: :func:`repro.sim.partition.lookahead_bound`).
    lookahead: "float | None" = None
    #: Wall-clock seconds a partition worker may stay silent before the
    #: coordinator presumes it hung/died and retries the run.
    heartbeat_timeout: float = 60.0
    #: Whole-run retries after a transient worker failure (SIGKILL, OOM).
    retries: int = 1
    #: Sync windows each worker runs per coordinator round-trip.  1
    #: reproduces the classic two-round-trip-per-window pipe protocol;
    #: >1 lets the fleet self-synchronize up to this many windows at a
    #: time over pairwise worker pipes (wire records and completion
    #: notices exchange directly, every worker replaying the same
    #: canonical ``(inject, src, seq)`` merge), cutting coordinator
    #: round-trips by ~2x the batch length.  Overridable per process
    #: via the ``REPRO_PARTITION_WINDOW_BATCH`` environment variable.
    window_batch: int = 64

    def __post_init__(self) -> None:
        _require(
            isinstance(self.partitions, int)
            and not isinstance(self.partitions, bool)
            and self.partitions >= 1,
            f"PartitionConfig.partitions must be an int >= 1 "
            f"(got {self.partitions!r})",
        )
        _require(
            self.lookahead is None
            or (isinstance(self.lookahead, (int, float)) and self.lookahead > 0),
            f"PartitionConfig.lookahead must be > 0 or None "
            f"(got {self.lookahead!r})",
        )
        _require(
            isinstance(self.heartbeat_timeout, (int, float))
            and self.heartbeat_timeout > 0,
            "PartitionConfig.heartbeat_timeout must be > 0 "
            f"(got {self.heartbeat_timeout!r})",
        )
        _require(
            isinstance(self.retries, int) and self.retries >= 0,
            f"PartitionConfig.retries must be an int >= 0 (got {self.retries!r})",
        )
        _require(
            isinstance(self.window_batch, int)
            and not isinstance(self.window_batch, bool)
            and self.window_batch >= 1,
            f"PartitionConfig.window_batch must be an int >= 1 "
            f"(got {self.window_batch!r})",
        )


def as_partition_config(value) -> "PartitionConfig | None":
    """Normalize a user-facing ``partitions`` value.

    ``None`` passes through (serial execution); an ``int`` becomes a
    default-policy :class:`PartitionConfig`; a ``PartitionConfig`` is
    returned as-is.  Anything else — including ``bool`` — raises
    :class:`~repro.errors.ConfigError`.  This is the one normalization
    point shared by ``Experiment``, the CLI verbs, and the workload
    drivers, so every layer spells ``partitions=`` identically.
    """
    if value is None:
        return None
    if isinstance(value, PartitionConfig):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return PartitionConfig(partitions=value)
    raise ConfigError(
        f"partitions must be an int >= 1, a PartitionConfig, or None "
        f"(got {value!r})"
    )


@dataclass(frozen=True)
class PlatformConfig(DictCodec):
    """A complete simulated platform: nodes, cores, fabric, library costs."""

    name: str = "expanse"
    num_nodes: int = 2
    cores_per_node: int = 128
    network: NetworkConfig = field(default_factory=NetworkConfig)
    mpi: MpiCosts = field(default_factory=MpiCosts)
    lci: LciCosts = field(default_factory=LciCosts)
    runtime: RuntimeCosts = field(default_factory=RuntimeCosts)
    compute: ComputeConfig = field(default_factory=ComputeConfig)
    #: Pin communication/progress threads to dedicated cores (§6.1.2).
    dedicated_comm_cores: bool = True

    def workers_for(self, backend: str, multinode: bool = True) -> int:
        """Worker-thread count per node for a backend, per §6.1.2.

        Single-node runs use every core for computation.  Multi-node runs
        dedicate one core to the communication thread and, for the LCI
        backend, another to the progress thread.
        """
        if not multinode:
            return self.cores_per_node
        reserved = 1 if backend == "mpi" else 2
        return max(1, self.cores_per_node - reserved)

    def with_nodes(self, num_nodes: int) -> "PlatformConfig":
        """Copy of this platform with a different node count."""
        return replace(self, num_nodes=num_nodes)


def expanse_platform(num_nodes: int = 2) -> PlatformConfig:
    """The paper's SDSC Expanse platform (Table 1): 128 cores/node, 2×HDR."""
    return PlatformConfig(name="expanse", num_nodes=num_nodes, cores_per_node=128)


def scaled_platform(num_nodes: int = 2, cores_per_node: int = 8) -> PlatformConfig:
    """Reduced platform for CI-speed benchmarks.

    Fewer worker cores per node keeps the DES event count manageable.  To
    preserve the communication/computation balance, the *node-level* compute
    rate is held constant: each of the ``cores_per_node`` workers is a "fat
    core" delivering ``128 / cores_per_node`` Expanse-cores' worth of flops.
    A node therefore generates the same communication demand per unit of
    compute as a real 128-core Expanse node, so the paper's regime
    boundaries (compute-bound vs. network-bound) appear at the same relative
    places (see EXPERIMENTS.md).  Fabric and software costs are identical to
    :func:`expanse_platform`.
    """
    ref = ComputeConfig()
    factor = 128 / cores_per_node
    return PlatformConfig(
        name=f"expanse-scaled-{cores_per_node}c",
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        compute=ComputeConfig(
            flops_per_core=ref.flops_per_core * factor,
            lr_flops_per_core=ref.lr_flops_per_core * factor,
        ),
    )
