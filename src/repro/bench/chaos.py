"""Chaos benchmark: a workload under a named fault plan.

Runs the same graph twice — once fault-free as the reference, once under the
plan — on the same seed, then checks that the faulty run still *computed the
same thing*: every task executed and every (flow, destination) data arrival
of the reference run happened in the faulty run too.  The report breaks the
injected faults down per kind against the recovery counters the engine and
the reliable transport emit on the obs bus.

The default workload is the small TLR Cholesky job; ``workload=`` points
the harness at any workload registered with :mod:`repro.workloads` — the
graph comes from the spec's task-graph builder, so every catalog scenario
(stencil, taskbench, ring, ...) runs under chaos plans unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import FaultConfig, scaled_platform
from repro.faults.engine import WIRE_FAULT_KINDS
from repro.hicma.dag import build_tlr_cholesky_graph
from repro.hicma.ranks import RankModel
from repro.hicma.timing import KernelTimeModel
from repro.runtime.context import ParsecContext, RunStats

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos-run configuration.

    ``workload`` names any registered workload; ``matrix_size``/
    ``tile_size`` only apply to the default ``hicma`` workload, while
    ``params`` overrides the workload's explore-scale defaults for every
    other one.
    """

    plan_name: str
    plan: FaultConfig
    matrix_size: int = 7200
    tile_size: int = 1200
    num_nodes: int = 2
    seed: int = 0
    workload: str = "hicma"
    params: dict = field(default_factory=dict)

    @property
    def nt(self) -> int:
        return max(2, self.matrix_size // self.tile_size)


@dataclass
class ChaosResult:
    """Resilience report for one backend under one plan."""

    backend: str
    plan_name: str
    stats: RunStats
    ref_stats: RunStats
    #: Which registered workload the chaos pair executed.
    workload: str = "hicma"
    #: Injections per fault kind (``fault.injected.*`` counters).
    injected: dict = field(default_factory=dict)
    #: Recoveries credited per fault kind (``fault.recovered.*`` counters).
    recovered: dict = field(default_factory=dict)
    #: Reliable-transport totals (``rel.*`` counters).
    transport: dict = field(default_factory=dict)
    #: Every reference data arrival happened in the faulty run too.
    numerics_ok: bool = False

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def slowdown(self) -> float:
        """Faulty-run makespan relative to the fault-free reference."""
        ref = self.ref_stats.makespan
        return self.stats.makespan / ref if ref > 0 else 1.0

    def summary(self) -> str:
        lines = [
            f"chaos[{self.backend}] {self.workload} plan={self.plan_name}: "
            f"TTS={self.stats.makespan * 1e3:.3f} ms "
            f"(fault-free {self.ref_stats.makespan * 1e3:.3f} ms, "
            f"{self.slowdown:.2f}x), {self.stats.tasks_executed} tasks, "
            f"numerics {'OK' if self.numerics_ok else 'MISMATCH'}",
            f"  {'fault kind':<12} {'injected':>8} {'recovered':>9}",
        ]
        for kind in sorted(self.injected):
            lines.append(
                f"  {kind:<12} {self.injected[kind]:>8} "
                f"{self.recovered.get(kind, '-'):>9}"
            )
        t = self.transport
        lines.append(
            "  transport: "
            f"{t.get('rel.retransmits', 0)} retransmits, "
            f"{t.get('rel.acks', 0)} acks, {t.get('rel.nacks', 0)} nacks, "
            f"{t.get('rel.dup_dropped', 0)} dups dropped, "
            f"{t.get('fault.reroutes', 0)} reroutes"
        )
        return "\n".join(lines)


def _arrivals(ctx: ParsecContext) -> set:
    """(flow, node) pairs whose data arrived, from the obs event store."""
    return {
        evt.key for evt in ctx.obs.memory.events if evt.kind == "data_arrival"
    }


def _chaos_graph(cfg: ChaosConfig, platform):
    """The task graph a chaos run executes.

    The default ``hicma`` workload keeps its historical direct build
    (bit-identical to pre-registry chaos runs); every other workload
    resolves through the registry and builds from its explore-scale
    parameters overlaid with ``cfg.params``.
    """
    if cfg.workload == "hicma":
        return build_tlr_cholesky_graph(
            cfg.nt, cfg.tile_size, num_nodes=cfg.num_nodes,
            rank_model=RankModel(cfg.nt, cfg.tile_size),
            time_model=KernelTimeModel(platform.compute),
        )
    from repro.workloads import get_workload

    spec = get_workload(cfg.workload)
    params = dict(spec.explore_params)
    params.update(cfg.params)
    params["num_nodes"] = cfg.num_nodes
    params["seed"] = cfg.seed
    return spec.build_graph(spec.build_config(**params), platform)


def _one_run(cfg: ChaosConfig, backend: str, plan):
    platform = scaled_platform(num_nodes=cfg.num_nodes, cores_per_node=4)
    graph = _chaos_graph(cfg, platform)
    ctx = ParsecContext(
        platform, backend=backend, seed=cfg.seed,
        observability=True, faults=plan,
    )
    stats = ctx.run(graph, until=36_000.0)
    return ctx, stats


def run_chaos(backend: str, cfg: ChaosConfig) -> ChaosResult:
    """Execute the reference + faulty pair and assemble the report."""
    ref_ctx, ref_stats = _one_run(cfg, backend, None)
    ctx, stats = _one_run(cfg, backend, cfg.plan)
    counters = stats.obs_counters
    injected = {
        k: counters.get(f"fault.injected.{k}", 0) for k in WIRE_FAULT_KINDS
    }
    injected["pool_spike"] = counters.get("fault.injected.pool_spike", 0)
    injected["straggler"] = counters.get("fault.injected.straggler", 0)
    recovered = {
        k: counters.get(f"fault.recovered.{k}", 0) for k in WIRE_FAULT_KINDS
    }
    # Duplicates are "recovered" by receiver-side dedup, delays by ordinary
    # delivery — credit them from the transport's own counters.
    recovered["dup"] = counters.get("rel.dup_dropped", 0)
    recovered["delay"] = injected["delay"]
    transport = {
        name: counters.get(name, 0)
        for name in (
            "rel.retransmits", "rel.acks", "rel.nacks",
            "rel.dup_dropped", "rel.recovered", "fault.reroutes",
        )
    }
    numerics_ok = (
        stats.tasks_executed == ref_stats.tasks_executed
        and _arrivals(ref_ctx) <= _arrivals(ctx)
    )
    return ChaosResult(
        backend=backend,
        plan_name=cfg.plan_name,
        workload=cfg.workload,
        stats=stats,
        ref_stats=ref_stats,
        injected=injected,
        recovered=recovered,
        transport=transport,
        numerics_ok=numerics_ok,
    )
