"""Comparison and report rendering for benchmark results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.ascii_plot import ascii_table

__all__ = ["Comparison"]


@dataclass
class Comparison:
    """Results of the same benchmark under several backends/variants."""

    title: str
    results: Mapping[str, Any]
    metric: str
    higher_is_better: bool = True
    notes: list = field(default_factory=list)

    def value(self, key: str) -> float:
        """The compared metric for one entry (attribute or dict key)."""
        result = self.results[key]
        v = getattr(result, self.metric, None)
        if v is None and isinstance(result, dict):
            v = result[self.metric]
        if v is None:
            raise AttributeError(f"{self.metric} not found on {result!r}")
        return float(v)

    def winner(self) -> str:
        """Entry with the best metric value."""
        pick = max if self.higher_is_better else min
        return pick(self.results, key=self.value)

    def ratio(self, a: str, b: str) -> float:
        """value(a) / value(b)."""
        return self.value(a) / self.value(b)

    def summary(self) -> str:
        """Human-readable comparison table."""
        rows = [
            (name, f"{self.value(name):.4g}") for name in self.results
        ]
        table = ascii_table([self.metric, "value"], rows, title=self.title)
        lines = [table, f"winner: {self.winner()}"]
        lines.extend(self.notes)
        return "\n".join(lines)
