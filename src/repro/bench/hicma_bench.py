"""HiCMA TLR Cholesky benchmarks (paper §6.4: Fig. 4, Fig. 5, Table 2).

The paper's configuration: st-2d-sqexp, N = 360,000, maxrank 150, accuracy
1e-8, band 1, two-flow algorithm; 16 nodes for the tile-size scan (Fig. 4),
1–32 nodes for strong scaling (Fig. 5).

Default scale here: N = 36,000 on nodes with 8 "fat" workers (node-level
compute held at Expanse levels — see ``scaled_platform``), which keeps the
same regime boundaries: too-large tiles starve parallelism, too-small tiles
bottleneck on communication.  ``REPRO_PAPER_SCALE=1`` selects the full
paper dimensions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stats import summarize
from repro.codec import DictCodec
from repro.config import (
    PlatformConfig,
    as_partition_config,
    paper_scale_enabled,
    scaled_platform,
)
from repro.errors import BenchmarkError
from repro.hicma.dag import build_tlr_cholesky_graph
from repro.hicma.ranks import RankModel
from repro.hicma.timing import KernelTimeModel
from repro.runtime.context import ParsecContext

__all__ = [
    "HicmaConfig",
    "HicmaResult",
    "run_hicma_benchmark",
    "default_matrix_size",
    "default_tile_sizes",
    "best_tile_scan",
]


def default_matrix_size() -> int:
    """Matrix dimension for the Fig. 4 harness at the current scale."""
    return 360_000 if paper_scale_enabled() else 36_000


def default_tile_sizes() -> list[int]:
    """The Fig. 4 tile-size sweep (divisors of the matrix size)."""
    if paper_scale_enabled():
        return [1200, 1500, 1800, 2400, 3000, 3600, 4500, 4800, 6000]
    return [1200, 1500, 1800, 2400, 3000, 3600, 4500, 6000]


@dataclass(frozen=True)
class HicmaConfig(DictCodec):
    """One TLR Cholesky execution."""

    matrix_size: int
    tile_size: int
    num_nodes: int = 16
    maxrank: int = 150
    two_flow: bool = True
    multithreaded_activate: bool = False
    clock_sync: bool = False
    seed: int = 0

    @property
    def nt(self) -> int:
        """Tiles per dimension."""
        if self.matrix_size % self.tile_size != 0:
            raise BenchmarkError(
                f"matrix {self.matrix_size} not divisible by tile {self.tile_size}"
            )
        return self.matrix_size // self.tile_size


@dataclass
class HicmaResult:
    """Measurements of one TLR Cholesky execution."""

    config: HicmaConfig
    backend: str
    time_to_solution: float = 0.0
    tasks: int = 0
    #: End-to-end latency stats (ACTIVATE send → data arrival, full
    #: multicast tree) — what Fig. 4b/5b plot.
    flow_latency: dict = field(default_factory=dict)
    msg_latency: dict = field(default_factory=dict)
    activates_sent: int = 0
    wire_bytes: int = 0
    worker_utilization: float = 0.0
    #: Kernel events fired during the run (events/s = this / wall time).
    events_processed: int = 0

    @property
    def mean_flow_latency(self) -> float:
        """Mean end-to-end latency (seconds)."""
        return self.flow_latency.get("mean", 0.0)

    def summary(self) -> str:
        """One-line report."""
        return (
            f"hicma[{self.backend}] N={self.config.matrix_size} "
            f"tile={self.config.tile_size} nodes={self.config.num_nodes}"
            f"{' MT' if self.config.multithreaded_activate else ''}: "
            f"TTS={self.time_to_solution:.3f}s "
            f"e2e={self.mean_flow_latency * 1e3:.2f}ms"
        )


def run_hicma_benchmark(
    backend: str,
    cfg: HicmaConfig,
    platform: Optional[PlatformConfig] = None,
    *,
    faults=None,
    schedule_policy=None,
    ctx_observer=None,
    progress=None,
    guards=None,
    partitions=None,
) -> HicmaResult:
    """Execute one TLR Cholesky on the simulated runtime.

    ``faults``/``schedule_policy``/``ctx_observer`` follow the same
    contract as :func:`repro.bench.pingpong.run_pingpong_benchmark`;
    ``progress`` (``True`` or a :class:`~repro.obs.progress.
    ProgressReporter`) turns on run-progress heartbeats — essential at
    ``REPRO_PAPER_SCALE=1``, where a single point is ~575k tasks.
    ``guards`` (:class:`~repro.supervise.guards.RunGuards`) enforces hard
    run budgets; on violation the structured abort carries a diagnostic
    snapshot and partial stats (see :meth:`~repro.runtime.context.
    ParsecContext.run`).  ``partitions`` (an ``int``, a
    :class:`~repro.config.PartitionConfig`, or ``None`` for serial)
    selects the partitioned PDES engine (:mod:`repro.sim.partition`) —
    measurements stay bit-identical to the serial kernel.
    """
    pcfg = as_partition_config(partitions)
    if platform is None:
        if paper_scale_enabled():
            from repro.config import expanse_platform

            platform = expanse_platform(num_nodes=cfg.num_nodes)
        else:
            platform = scaled_platform(num_nodes=cfg.num_nodes, cores_per_node=8)
    if pcfg is not None:
        from repro.sim.partition import run_partitioned_graph
        from repro.workloads.builtin import _hicma_graph

        stats = run_partitioned_graph(
            _hicma_graph,
            backend,
            cfg,
            platform,
            pcfg,
            faults=faults,
            schedule_policy=schedule_policy,
            ctx_observer=ctx_observer,
            progress=progress,
            guards=guards,
            ctx_kwargs={
                "multithreaded_activate": cfg.multithreaded_activate,
                "clock_sync": cfg.clock_sync,
            },
        )
        return _hicma_result(cfg, backend, stats)
    ranks = RankModel(cfg.nt, cfg.tile_size, cfg.maxrank)
    times = KernelTimeModel(platform.compute)
    t_build = time.perf_counter()
    graph = build_tlr_cholesky_graph(
        cfg.nt,
        cfg.tile_size,
        num_nodes=cfg.num_nodes,
        rank_model=ranks,
        time_model=times,
        maxrank=cfg.maxrank,
        two_flow=cfg.two_flow,
    )
    # Fail eagerly on misplacement: a task on a node outside the platform
    # would otherwise only surface deep inside ctx.run().
    graph.validate(num_nodes=cfg.num_nodes)
    stream = getattr(progress, "stream", None)
    if stream is not None:
        print(
            f"[progress] graph built: {graph.num_tasks:,} tasks, "
            f"{graph.num_flows:,} flows in {time.perf_counter() - t_build:.1f}s",
            file=stream,
            flush=True,
        )
    ctx = ParsecContext(
        platform,
        backend=backend,
        multithreaded_activate=cfg.multithreaded_activate,
        clock_sync=cfg.clock_sync,
        seed=cfg.seed,
        faults=faults,
        schedule_policy=schedule_policy,
    )
    if ctx_observer is not None:
        ctx_observer(ctx)
    stats = ctx.run(graph, until=36_000.0, progress=progress, guards=guards)
    return _hicma_result(cfg, backend, stats)


def _hicma_result(cfg: HicmaConfig, backend: str, stats) -> HicmaResult:
    """Flatten :class:`~repro.runtime.context.RunStats` into the raw
    result record (shared by the serial and partitioned paths)."""
    result = HicmaResult(
        config=cfg,
        backend=backend,
        time_to_solution=stats.makespan,
        tasks=stats.tasks_executed,
        flow_latency=summarize(stats.flow_latencies),
        msg_latency=summarize(stats.msg_latencies),
        activates_sent=stats.activates_sent,
        wire_bytes=stats.wire_bytes,
        worker_utilization=stats.worker_utilization,
        events_processed=stats.events_processed,
    )
    # Partitioned runs attach sync-protocol telemetry as an undeclared
    # attribute (kept out of dataclasses.asdict fingerprints).
    sync = getattr(stats, "partition_sync", None)
    if sync is not None:
        result.partition_sync = sync
    return result


def best_tile_scan(
    backend: str,
    num_nodes: int,
    tile_sizes: Optional[list[int]] = None,
    matrix_size: Optional[int] = None,
    sweep_config=None,
    **kwargs,
) -> tuple[int, dict]:
    """Run every tile size; return (best tile, all results) — Table 2.

    Point execution goes through :func:`repro.sweep.run_sweep`, so pass a
    :class:`~repro.config.SweepConfig` to parallelise the scan or reuse a
    result cache; results are attribute views over the sweep records
    (``.time_to_solution`` etc.) and are bit-identical either way.
    """
    from repro.config import SweepConfig
    from repro.sweep.engine import run_sweep
    from repro.sweep.spec import SweepPoint, SweepSpec

    matrix_size = matrix_size or default_matrix_size()
    tile_sizes = tile_sizes or default_tile_sizes()
    cfg_fields = {"multithreaded_activate": False, "seed": 0, **kwargs}
    points = tuple(
        SweepPoint(
            kind="hicma",
            backend=backend,
            params={
                "matrix_size": matrix_size,
                "tile_size": tile,
                "num_nodes": num_nodes,
                **cfg_fields,
            },
        )
        for tile in tile_sizes
    )
    spec = SweepSpec(name=f"tile-scan-{backend}-{num_nodes}n", points=points)
    outcome = run_sweep(spec, sweep_config or SweepConfig(cache_enabled=False))
    results = dict(zip(tile_sizes, outcome.views()))
    best = min(results, key=lambda t: results[t].time_to_solution)
    return best, results
