"""Reusable task-graph workload generators.

Beyond the paper's benchmarks (ping-pong, overlap, HiCMA), these generators
produce the communication patterns §2.1 describes as typical of dynamic
runtimes — many independent flows, dynamically varying sizes, broadcast
trees — for use in examples, tests, and custom experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import BenchmarkError
from repro.runtime.taskpool import TaskGraph
from repro.units import KiB

__all__ = [
    "chain",
    "fan_out",
    "halo_exchange",
    "random_layered_dag",
    "all_to_all_rounds",
]


def chain(
    length: int, num_nodes: int, flow_bytes: int = 64 * KiB, duration: float = 5e-6
) -> TaskGraph:
    """A single dependency chain bouncing round-robin across nodes —
    the purest latency workload."""
    if length < 1:
        raise BenchmarkError("chain needs at least one task")
    g = TaskGraph()
    prev = None
    for i in range(length):
        inputs = [prev] if prev is not None else []
        t = g.add_task(node=i % num_nodes, duration=duration, inputs=inputs)
        prev = g.add_flow(t, flow_bytes)
    return g


def fan_out(
    consumers_per_node: int,
    num_nodes: int,
    flow_bytes: int = 64 * KiB,
    duration: float = 5e-6,
) -> TaskGraph:
    """One producer, consumers on every node — a multicast-tree workload."""
    g = TaskGraph()
    root = g.add_task(node=0, duration=duration, kind="root")
    flow = g.add_flow(root, flow_bytes)
    for node in range(num_nodes):
        for _ in range(consumers_per_node):
            g.add_task(node=node, duration=duration, inputs=[flow])
    return g


def halo_exchange(
    num_nodes: int,
    steps: int,
    tiles_per_node: int = 4,
    halo_bytes: int = 32 * KiB,
    duration: float = 20e-6,
) -> TaskGraph:
    """A 1D stencil: every step, each node's boundary tiles exchange halos
    with both neighbours (periodic), then compute.  Regular, bulk-
    synchronous-like traffic — the pattern MPI is optimised for, useful as
    a contrast to the runtime-style workloads."""
    if num_nodes < 2:
        raise BenchmarkError("halo exchange needs at least two nodes")
    g = TaskGraph()
    # state[node][tile] = flow feeding the next step's task there.
    state = [[None] * tiles_per_node for _ in range(num_nodes)]
    for step in range(steps):
        new_state = [[None] * tiles_per_node for _ in range(num_nodes)]
        for node in range(num_nodes):
            for tile in range(tiles_per_node):
                inputs = []
                if state[node][tile] is not None:
                    inputs.append(state[node][tile])
                    # Boundary tiles also need the neighbour's halo.
                    if tile == 0:
                        left = (node - 1) % num_nodes
                        inputs.append(state[left][tiles_per_node - 1])
                    elif tile == tiles_per_node - 1:
                        right = (node + 1) % num_nodes
                        inputs.append(state[right][0])
                t = g.add_task(
                    node=node,
                    duration=duration,
                    priority=float(steps - step),
                    inputs=inputs,
                    kind=f"step{step}",
                )
                new_state[node][tile] = g.add_flow(t, halo_bytes)
        state = new_state
    return g


def random_layered_dag(
    layers: Sequence[int],
    num_nodes: int,
    fan_in: int = 2,
    flow_bytes: int = 16 * KiB,
    duration: float = 5e-6,
    seed: int = 0,
) -> TaskGraph:
    """An irregular layered DAG with random placement and random fan-in —
    the nondeterministic communication pattern of §2.1."""
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    prev_flows: list[int] = []
    for li, width in enumerate(layers):
        new_flows = []
        for _ in range(width):
            if prev_flows:
                take = min(fan_in, len(prev_flows))
                picks = rng.choice(len(prev_flows), size=take, replace=False)
                inputs = [prev_flows[int(i)] for i in picks]
            else:
                inputs = []
            t = g.add_task(
                node=int(rng.integers(num_nodes)),
                duration=duration * float(rng.uniform(0.5, 1.5)),
                inputs=inputs,
                kind=f"layer{li}",
            )
            new_flows.append(g.add_flow(t, int(flow_bytes * rng.uniform(0.25, 2.0))))
        prev_flows = new_flows
    return g


def all_to_all_rounds(
    num_nodes: int,
    rounds: int,
    flow_bytes: int = 64 * KiB,
    duration: float = 5e-6,
) -> TaskGraph:
    """Each round, every node produces one flow consumed by every other
    node — maximal incast/multicast pressure."""
    g = TaskGraph()
    prev: dict[int, list[int]] = {n: [] for n in range(num_nodes)}
    for _round in range(rounds):
        flows = {}
        for node in range(num_nodes):
            t = g.add_task(node=node, duration=duration, inputs=prev[node])
            flows[node] = g.add_flow(t, flow_bytes)
        prev = {
            node: [flows[other] for other in range(num_nodes)]
            for node in range(num_nodes)
        }
    # Sink tasks consume the final round everywhere.
    for node in range(num_nodes):
        g.add_task(node=node, duration=duration, inputs=prev[node])
    return g
