"""Computation/communication overlap benchmark (paper §6.3, Fig. 3).

A ping-pong variant where each task executes √(M/8) FMA operations per
8-byte element of its M-byte fragment — GEMM-like intensity.  Total FLOPs
are held constant across granularities by scaling the iteration count, so
the data moved grows as fragments shrink (the strong-scaling trade-off).

Reference curves:

- **Roofline**: communication fully overlapped —
  ``perf = FLOPs / max(T_compute, T_comm)``;
- **No Overlap**: strictly alternating —
  ``perf = FLOPs / (T_compute + T_comm)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.codec import DictCodec
from repro.config import PlatformConfig, paper_scale_enabled, scaled_platform
from repro.errors import BenchmarkError
from repro.runtime.context import ParsecContext
from repro.bench.pingpong import PingPongConfig, build_pingpong_graph
from repro.units import MiB

__all__ = [
    "OverlapConfig",
    "OverlapResult",
    "run_overlap_benchmark",
    "roofline_flops",
    "no_overlap_flops",
]


@dataclass(frozen=True)
class OverlapConfig(DictCodec):
    """Parameters of one overlap-benchmark execution."""

    fragment_size: int
    total_bytes: Optional[int] = None
    #: Iterations at the *largest* fragment; scaled up as fragments shrink
    #: to hold total FLOPs constant.
    base_iterations: int = 2
    reference_fragment: Optional[int] = None
    num_nodes: int = 2
    seed: int = 0

    def resolved_total(self) -> int:
        """Total data per iteration (paper vs CI scale)."""
        if self.total_bytes is not None:
            return self.total_bytes
        return 256 * MiB if paper_scale_enabled() else 32 * MiB

    def resolved_reference(self) -> int:
        """Fragment size anchoring the constant-FLOPs iteration scaling."""
        return self.reference_fragment or self.resolved_total() // 4

    def iterations(self) -> int:
        """Iteration count keeping total FLOPs constant: FLOPs/iter ∝ √M."""
        ref = self.resolved_reference()
        scale = math.sqrt(ref / self.fragment_size)
        return max(2, round(self.base_iterations * scale))

    def intensity(self) -> float:
        """FMAs per 8-byte element: √(M/8) (GEMM-like)."""
        return math.sqrt(self.fragment_size / 8.0)


@dataclass
class OverlapResult:
    """Measured performance of one overlap configuration."""

    config: OverlapConfig
    backend: str
    flops_per_s: float = 0.0
    total_flops: float = 0.0
    makespan: float = 0.0
    tasks: int = 0
    flow_latency: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line report."""
        return (
            f"overlap[{self.backend}] frag={self.config.fragment_size}B: "
            f"{self.flops_per_s / 1e12:.3f} TFLOP/s"
        )


def _total_flops(cfg: OverlapConfig) -> float:
    per_task = (cfg.fragment_size / 8.0) * cfg.intensity() * 2.0
    window = cfg.resolved_total() // cfg.fragment_size
    return per_task * window * cfg.iterations()


def _bound_terms(cfg: OverlapConfig, platform: PlatformConfig) -> tuple[float, float, float]:
    """(total FLOPs, compute time, comm time) for the analytic bounds.

    Parallelism is capped by the window (one task per in-flight fragment);
    consecutive iterations travel in opposite directions, so the pipelined
    benchmark can use both duplex directions of the NIC.
    """
    workers = platform.workers_for("lci", multinode=True) * platform.num_nodes
    window = cfg.resolved_total() // cfg.fragment_size
    concurrency = min(window, workers)
    compute_rate = concurrency * platform.compute.flops_per_core
    flops = _total_flops(cfg)
    t_compute = flops / compute_rate
    bytes_moved = cfg.resolved_total() * cfg.iterations()
    t_comm = bytes_moved / (2.0 * platform.network.bandwidth)
    return flops, t_compute, t_comm


def roofline_flops(cfg: OverlapConfig, platform: PlatformConfig) -> float:
    """Perfect-overlap performance bound."""
    flops, t_compute, t_comm = _bound_terms(cfg, platform)
    return flops / max(t_compute, t_comm)


def no_overlap_flops(cfg: OverlapConfig, platform: PlatformConfig) -> float:
    """Zero-overlap performance bound (compute and comm strictly serial)."""
    flops, t_compute, t_comm = _bound_terms(cfg, platform)
    return flops / (t_compute + t_comm)


def run_overlap_benchmark(
    backend: str,
    cfg: OverlapConfig,
    platform: Optional[PlatformConfig] = None,
    *,
    faults=None,
    schedule_policy=None,
    ctx_observer=None,
) -> OverlapResult:
    """Execute one overlap configuration; returns achieved FLOP/s.

    ``faults``/``schedule_policy``/``ctx_observer`` follow the same
    contract as :func:`repro.bench.pingpong.run_pingpong_benchmark`.
    """
    platform = platform or scaled_platform(num_nodes=cfg.num_nodes)
    pp_cfg = PingPongConfig(
        fragment_size=cfg.fragment_size,
        streams=1,
        total_bytes=cfg.resolved_total(),
        iterations=cfg.iterations(),
        sync=False,  # §6.3: the SYNC task is removed to enable overlap
        intensity=cfg.intensity(),
        num_nodes=cfg.num_nodes,
        seed=cfg.seed,
    )
    graph = build_pingpong_graph(pp_cfg, platform.compute.flops_per_core)
    ctx = ParsecContext(
        platform, backend=backend, seed=cfg.seed,
        faults=faults, schedule_policy=schedule_policy,
    )
    if ctx_observer is not None:
        ctx_observer(ctx)
    stats = ctx.run(graph, until=3600.0)
    flops = _total_flops(cfg)
    if stats.makespan <= 0:
        raise BenchmarkError("degenerate overlap timing")
    from repro.analysis.stats import summarize

    return OverlapResult(
        config=cfg,
        backend=backend,
        flops_per_s=flops / stats.makespan,
        total_flops=flops,
        makespan=stats.makespan,
        tasks=stats.tasks_executed,
        flow_latency=summarize(stats.flow_latencies),
    )
