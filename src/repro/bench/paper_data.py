"""The paper's reported numbers, for paper-vs-measured comparison.

Exact values come from the text; curve points not stated numerically are
digitized approximately from the figures and marked as such.  The harness
compares *shapes* (who wins, by what factor, where crossovers fall), not
absolute values — our substrate is a calibrated simulator, not Expanse.
"""

from __future__ import annotations

from repro.units import KiB

# ---- Fig. 2a (one-stream bandwidth), exact values from §6.2 text ----------

#: MPI backend bandwidth anchor points: granularity -> Gbit/s.
FIG2A_MPI_ANCHORS = {128 * KiB: 62.5, int(90.5 * KiB): 45.2}
#: LCI backend anchor points.
FIG2A_LCI_ANCHORS = {int(45.25 * KiB): 64.1, 32 * KiB: 43.5}
#: "supporting tasks about 2.83 times smaller at a similar efficiency".
FIG2A_GRANULARITY_RATIO = 2.83
#: Peak bandwidth both backends reach with coarse tasks (2× HDR ≈ 100 Gb/s).
FIG2A_PEAK_GBIT = 100.0

# ---- Fig. 3 (overlap), §6.3 text -------------------------------------------

#: "At the 128 KiB fragment size, the LCI backend is able to achieve over
#: twice the performance of the MPI backend, while at 32 KiB it is an order
#: of magnitude faster."
FIG3_LCI_OVER_MPI = {128 * KiB: 2.0, 32 * KiB: 10.0}

# ---- Fig. 4 (tile scaling, 16 nodes, N=360,000), §6.4.2/§6.4.3 -------------

#: Tile sizes scanned.
FIG4_TILE_SIZES = [1200, 1500, 1800, 2400, 3000, 3600, 4500, 4800, 6000]
#: Best-performing tile size in Fig. 4a (both backends near 2400–3000).
FIG4_BEST_TILE_RANGE = (2400, 3000)
#: §6.4.3: LCI+MT time-to-solution at tile 1200: 16.384 s → 14.839 s (10 %).
FIG4_LCI_TTS_1200 = 16.384
FIG4_LCI_MT_TTS_1200 = 14.839
#: §6.4.3: best tile 2400: MT improves 3 %, to 10.516 s.
FIG4_LCI_MT_TTS_2400 = 10.516
#: §6.4.3: LCI MT reduces individual multicast message latency by up to
#: 63 % and end-to-end latency by up to 46 %.
FIG4_MT_MSG_LATENCY_REDUCTION = 0.63
FIG4_MT_E2E_LATENCY_REDUCTION = 0.46
#: Fig. 4b y-range: mean end-to-end latencies fall between ~10 and ~70 ms.
FIG4B_LATENCY_RANGE_S = (5e-3, 100e-3)
#: Abstract/§7: LCI reduces mean end-to-end latency by over 50 % and
#: time-to-solution by up to 12 %.
PAPER_E2E_LATENCY_REDUCTION = 0.50
PAPER_TTS_IMPROVEMENT = 0.12

# ---- Table 2 (best tile size per node count) --------------------------------

TABLE2_NODES = [1, 2, 4, 8, 16, 32]
TABLE2_BEST_TILE = {
    "mpi": {1: 4500, 2: 4500, 4: 3600, 8: 3000, 16: 3000, 32: 3000},
    "lci": {1: 4500, 2: 4500, 4: 3600, 8: 3000, 16: 2400, 32: 1800},
}

# ---- Fig. 5 (strong scaling) -------------------------------------------------

#: Digitized (approximate) time-to-solution from Fig. 5a, seconds.
FIG5A_TTS_APPROX = {
    "lci": {1: 23.0, 2: 18.5, 4: 15.0, 8: 12.5, 16: 10.5, 32: 10.0},
    "mpi": {1: 23.0, 2: 18.5, 4: 15.5, 8: 13.5, 16: 12.0, 32: 11.5},
}
