"""Benchmark workloads and the per-figure reproduction harness.

One module per benchmark family:

- :mod:`repro.bench.pingpong` — the task-based windowed ping-pong bandwidth
  benchmark of §6.2 (Fig. 2a/2b);
- :mod:`repro.bench.overlap` — the computation/communication overlap
  benchmark of §6.3 (Fig. 3), including the analytic Roofline / No-Overlap
  reference curves;
- :mod:`repro.bench.hicma_bench` — the HiCMA TLR Cholesky experiments of
  §6.4 (Fig. 4a/4b, Fig. 5a/5b, Table 2);
- :mod:`repro.bench.paper_data` — the paper's reported numbers (digitized
  anchor points) for paper-vs-measured comparison;
- :mod:`repro.bench.report` — comparison/rendering helpers.
"""

from repro.bench import workloads
from repro.bench.pingpong import PingPongConfig, PingPongResult, run_pingpong_benchmark
from repro.bench.overlap import OverlapConfig, OverlapResult, run_overlap_benchmark
from repro.bench.hicma_bench import HicmaConfig, HicmaResult, run_hicma_benchmark
from repro.bench.report import Comparison

__all__ = [
    "workloads",
    "PingPongConfig",
    "PingPongResult",
    "run_pingpong_benchmark",
    "OverlapConfig",
    "OverlapResult",
    "run_overlap_benchmark",
    "HicmaConfig",
    "HicmaResult",
    "run_hicma_benchmark",
    "Comparison",
]
