"""The task-based windowed ping-pong bandwidth benchmark (paper §6.2).

``PINGPONG(t, f, c)`` tasks operate on fragment ``f`` of a fixed total per
iteration ``t``, for stream ``c``; tasks execute round-robin between nodes
so the data travels back and forth on the network.  With ``sync=True`` a
``SYNC(t)`` task forces serialization between iterations (the paper's
default); removing it lets iterations pipeline, which recovers the "lost"
bidirectional bandwidth at large fragments (Fig. 2b) at the cost of more
(less aggregated) ACTIVATE messages.

Default scale: 32 MiB per iteration (the paper uses 256 MiB); set
``REPRO_PAPER_SCALE=1`` for the full figure sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stats import summarize
from repro.codec import DictCodec
from repro.config import PlatformConfig, paper_scale_enabled, scaled_platform
from repro.errors import BenchmarkError
from repro.runtime.context import ParsecContext
from repro.runtime.taskpool import TaskGraph
from repro.units import KiB, MiB, gbit_per_s

__all__ = [
    "PingPongConfig",
    "PingPongResult",
    "build_pingpong_graph",
    "run_pingpong_benchmark",
    "default_granularities",
]

#: Size of the tiny serialization flows (ACTIVATE-sized control data).
_SYNC_BYTES = 64


def default_granularities() -> list[int]:
    """The fragment-size sweep of Fig. 2 (paper: 8 KiB – 8 MiB)."""
    if paper_scale_enabled():
        return [8 * KiB * (2**i) for i in range(11)]  # 8 KiB .. 8 MiB
    return [16 * KiB * (4**i) for i in range(5)]  # 16 KiB .. 4 MiB


@dataclass(frozen=True)
class PingPongConfig(DictCodec):
    """Parameters of one ping-pong execution."""

    fragment_size: int
    streams: int = 1
    #: Total data per iteration per stream (window = total / fragment).
    total_bytes: Optional[int] = None
    iterations: int = 6
    sync: bool = True
    #: FMA operations per 8-byte element (0 = pure bandwidth test).
    intensity: float = 0.0
    num_nodes: int = 2
    seed: int = 0

    def resolved_total(self) -> int:
        """Total data per iteration (paper vs CI scale)."""
        if self.total_bytes is not None:
            return self.total_bytes
        return 256 * MiB if paper_scale_enabled() else 32 * MiB

    @property
    def window(self) -> int:
        """Fragments in flight per iteration (total / fragment size)."""
        w = self.resolved_total() // self.fragment_size
        if w < 1:
            raise BenchmarkError(
                f"fragment {self.fragment_size} larger than total "
                f"{self.resolved_total()}"
            )
        return w


@dataclass
class PingPongResult:
    """Bandwidth and latency measurements of one configuration."""

    config: PingPongConfig
    backend: str
    #: Aggregate bandwidth over the steady-state iterations, bytes/s.
    bandwidth: float = 0.0
    makespan: float = 0.0
    iteration_times: list = field(default_factory=list)
    flow_latency: dict = field(default_factory=dict)
    activates_sent: int = 0
    tasks: int = 0

    @property
    def bandwidth_gbit(self) -> float:
        """Achieved bandwidth in Gbit/s."""
        return gbit_per_s(self.bandwidth)

    def summary(self) -> str:
        """One-line report."""
        return (
            f"pingpong[{self.backend}] frag={self.config.fragment_size}B "
            f"window={self.config.window} streams={self.config.streams}: "
            f"{self.bandwidth_gbit:.1f} Gbit/s"
        )


def build_pingpong_graph(
    cfg: PingPongConfig, flops_per_core: float
) -> TaskGraph:
    """Build the PINGPONG/SYNC task graph.

    With ``sync=True``, iteration t's output fragments pass through
    zero-cost RELAY tasks on the producing node that additionally depend on
    ``SYNC(t, c)``; the remote transfer to iteration t+1 therefore cannot
    start before every task of iteration t has completed — the paper's
    "force serialization".  Without sync, fragments flow directly and
    consecutive iterations (opposite directions on the wire) pipeline.
    """
    g = TaskGraph()
    frag = cfg.fragment_size
    window = cfg.window
    n_nodes = cfg.num_nodes
    # GEMM-like compute per task: intensity FMAs (2 flops) per 8-byte word.
    duration = (
        (frag / 8.0) * cfg.intensity * 2.0 / flops_per_core
        if cfg.intensity > 0
        else 0.0
    )

    def node_of(t: int, c: int) -> int:
        return (c + t) % n_nodes

    # (f, c) -> flow id carrying the fragment into iteration t.
    prev_data: dict[tuple[int, int], int] = {}
    for t in range(cfg.iterations):
        iter_tasks: dict[int, list[int]] = {}
        for c in range(cfg.streams):
            node = node_of(t, c)
            for f in range(window):
                inputs = []
                if (f, c) in prev_data:
                    inputs.append(prev_data[(f, c)])
                tid = g.add_task(
                    node=node,
                    duration=duration,
                    priority=float(cfg.iterations - t),
                    inputs=inputs,
                    kind=f"pp{t}",
                )
                iter_tasks.setdefault(c, []).append(tid)
        if t == cfg.iterations - 1:
            break
        for c in range(cfg.streams):
            if cfg.sync:
                # SYNC(t, c) gathers a tiny flow from each task of the
                # stream's iteration, then gates the RELAYs.
                sync_inputs = [
                    g.add_flow(tid, _SYNC_BYTES) for tid in iter_tasks[c]
                ]
                sync_t = g.add_task(
                    node=node_of(t, c),
                    duration=0.0,
                    priority=1e6,
                    inputs=sync_inputs,
                    kind=f"sync{t}",
                )
                sync_flow = g.add_flow(sync_t, _SYNC_BYTES)
                for f, tid in enumerate(iter_tasks[c]):
                    local_flow = g.add_flow(tid, frag)
                    relay = g.add_task(
                        node=node_of(t, c),
                        duration=0.0,
                        priority=float(cfg.iterations - t),
                        inputs=[local_flow, sync_flow],
                        kind=f"relay{t}",
                    )
                    prev_data[(f, c)] = g.add_flow(relay, frag)
            else:
                for f, tid in enumerate(iter_tasks[c]):
                    prev_data[(f, c)] = g.add_flow(tid, frag)
    return g


def run_pingpong_benchmark(
    backend: str,
    cfg: PingPongConfig,
    platform: Optional[PlatformConfig] = None,
    *,
    faults=None,
    schedule_policy=None,
    ctx_observer=None,
) -> PingPongResult:
    """Execute one ping-pong configuration and compute its bandwidth.

    ``faults`` (a :class:`~repro.config.FaultConfig`) and
    ``schedule_policy`` (a :class:`~repro.sim.core.SchedulePolicy`) pass
    straight to the :class:`ParsecContext`; ``ctx_observer(ctx)`` is
    invoked after context construction and before the run so callers such
    as the schedule explorer can install audits and inspect the context
    post-run.  All three default to the plain benchmark behaviour.
    """
    platform = platform or scaled_platform(num_nodes=cfg.num_nodes)
    graph = build_pingpong_graph(cfg, platform.compute.flops_per_core)
    ctx = ParsecContext(
        platform, backend=backend, seed=cfg.seed,
        faults=faults, schedule_policy=schedule_policy,
    )
    if ctx_observer is not None:
        ctx_observer(ctx)
    # Track per-iteration completion times through the task-done hook.
    iter_done: dict[int, float] = {}
    inner = ctx.on_task_done

    def hook(task):
        if task.kind.startswith("pp"):
            t = int(task.kind[2:])
            iter_done[t] = ctx.sim.now
        inner(task)

    ctx.on_task_done = hook
    stats = ctx.run(graph, until=600.0)
    times = [iter_done[t] for t in sorted(iter_done)]
    # Steady state: exclude the first iteration (cold pipeline).
    if len(times) >= 3:
        span = times[-1] - times[0]
        iters = len(times) - 1
    else:
        span = stats.makespan
        iters = len(times)
    if span <= 0:
        raise BenchmarkError("degenerate ping-pong timing")
    moved = iters * cfg.streams * cfg.window * cfg.fragment_size
    return PingPongResult(
        config=cfg,
        backend=backend,
        bandwidth=moved / span,
        makespan=stats.makespan,
        iteration_times=times,
        flow_latency=summarize(stats.flow_latencies),
        activates_sent=stats.activates_sent,
        tasks=stats.tasks_executed,
    )
