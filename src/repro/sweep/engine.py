"""The parallel sweep engine: fan a :class:`~repro.sweep.spec.SweepSpec`
out over worker processes, with a content-addressed result cache.

Execution contract
------------------

- **Determinism.**  Every point is fully resolved before dispatch and each
  simulation seeds its own :class:`~repro.sim.rng.RngStreams` from the
  point's parameters, so a point's result record is bit-identical whether
  it runs in-process (``jobs=1``), in a worker process, or is replayed
  from the cache (records round-trip through canonical JSON, which is
  exact for finite doubles).  The test suite asserts parallel == serial.
- **Caching.**  With a :class:`~repro.sweep.cache.ResultCache`, points
  whose :func:`~repro.sweep.spec.point_key` is already stored are not
  simulated at all; fresh results are stored after execution.
- **Progress.**  The engine emits ``sweep_start`` / ``sweep_point`` /
  ``sweep_end`` events and ``sweep.*`` counters on the observability bus
  (free no-ops on the default :data:`~repro.obs.bus.NULL_BUS`).
- **Failure.**  A point that raises is retried up to ``retries`` times
  with delays from the shared :class:`~repro.runtime.comm_engine.
  BackoffPolicy` schedule; exhausted points either abort the sweep
  (``fail_fast``) or are recorded as ``None``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config import SweepConfig
from repro.errors import SweepError
from repro.obs.bus import NULL_BUS
from repro.runtime.comm_engine import BackoffPolicy
from repro.sweep.cache import ResultCache
from repro.sweep.spec import SweepPoint, SweepSpec, point_key

__all__ = ["PointView", "SweepOutcome", "execute_point", "run_sweep"]


def _record_of(result) -> dict:
    """Flatten a benchmark result dataclass into a JSON-able record.

    Only plain measurement fields survive — the config is identified by
    the cache key, and summaries regenerate from the record.
    """
    rec = {}
    for f in dataclasses.fields(result):
        if f.name == "config":
            continue
        value = getattr(result, f.name)
        rec[f.name] = value
    return rec


def execute_point(point: SweepPoint) -> dict:
    """Run one sweep point's simulation and return its result record."""
    if point.kind == "hicma":
        from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark

        result = run_hicma_benchmark(point.backend, HicmaConfig(**point.params))
    elif point.kind == "pingpong":
        from repro.bench.pingpong import PingPongConfig, run_pingpong_benchmark

        result = run_pingpong_benchmark(point.backend, PingPongConfig(**point.params))
    elif point.kind == "overlap":
        from repro.bench.overlap import OverlapConfig, run_overlap_benchmark

        result = run_overlap_benchmark(point.backend, OverlapConfig(**point.params))
    else:  # pragma: no cover - SweepPoint validates kinds
        raise SweepError(f"unknown sweep point kind {point.kind!r}")
    return _record_of(result)


def _point_job(doc: dict) -> dict:
    """Worker-process entry: rebuild the point, execute, return the record.

    Records cross the process boundary as canonical JSON rather than
    pickled floats so the parallel path returns byte-for-byte what a cache
    round-trip would — the bit-identical contract has a single codec.
    """
    record = execute_point(SweepPoint.from_dict(doc))
    return json.loads(json.dumps(record, sort_keys=True))


class PointView:
    """Attribute access over a result record (harness compatibility).

    The figure benchmarks were written against result dataclasses
    (``r.time_to_solution``, ``r.mean_flow_latency``); cached sweeps hand
    back plain dicts.  This view restores the attribute surface without
    re-running anything.
    """

    __slots__ = ("record",)

    def __init__(self, record: dict):
        self.record = record

    def __getattr__(self, name: str):
        try:
            return self.record[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def mean_flow_latency(self) -> float:
        """Mean end-to-end latency (seconds)."""
        return self.record.get("flow_latency", {}).get("mean", 0.0)

    def __repr__(self) -> str:
        return f"PointView({self.record!r})"


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in spec order."""

    spec: SweepSpec
    #: One result record per point (``None`` for a failed point when
    #: ``fail_fast=False``).
    records: list
    #: Content-address key per point.
    keys: list
    executed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    wall_time: float = 0.0
    errors: list = field(default_factory=list)

    def views(self) -> list:
        """Records wrapped for attribute access, in spec order."""
        return [PointView(r) if r is not None else None for r in self.records]

    def summary(self) -> str:
        """One-line report."""
        return (
            f"sweep[{self.spec.name}] {len(self.spec)} points: "
            f"{self.executed} simulated, {self.cached} cached, "
            f"{self.failed} failed in {self.wall_time:.1f}s wall"
        )


def run_sweep(
    spec: SweepSpec,
    config: Optional[SweepConfig] = None,
    cache: "ResultCache | None" = None,
    obs: Any = NULL_BUS,
    backoff: Optional[BackoffPolicy] = None,
) -> SweepOutcome:
    """Execute every point of ``spec`` and return records in spec order.

    ``cache=None`` with ``config.cache_enabled`` builds the default
    :class:`~repro.sweep.cache.ResultCache`; pass an instance to control
    the location, or set ``cache_enabled=False`` to simulate every point.
    """
    config = config or SweepConfig()
    if cache is None and config.cache_enabled:
        cache = ResultCache(config.cache_dir)
    if backoff is None:
        # Wall-clock retry schedule: 50 ms base, doubling, 2 s cap.
        backoff = BackoffPolicy(base=0.05, factor=2.0, max_delay=2.0)
    t0 = time.perf_counter()
    keys = [point_key(p) for p in spec.points]
    outcome = SweepOutcome(spec=spec, records=[None] * len(keys), keys=keys)
    c_exec = obs.counter("sweep.executed")
    c_cached = obs.counter("sweep.cached")
    c_failed = obs.counter("sweep.failed")
    c_retried = obs.counter("sweep.retried")
    obs.emit(
        "sweep_start", -1, key=spec.name,
        info={"points": len(keys), "jobs": config.jobs}, time=0.0,
    )

    pending = []  # indices that need simulation
    for idx, key in enumerate(keys):
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            outcome.records[idx] = hit
            outcome.cached += 1
            c_cached.inc()
            obs.emit("sweep_point", -1, key=spec.points[idx].label,
                     info="cached", time=0.0)
        else:
            pending.append(idx)

    def finish(idx: int, record: dict) -> None:
        outcome.records[idx] = record
        outcome.executed += 1
        c_exec.inc()
        if cache is not None:
            cache.put(keys[idx], spec.points[idx].to_dict(), record)
        obs.emit("sweep_point", -1, key=spec.points[idx].label,
                 info="executed", time=0.0)

    def fail(idx: int, exc: BaseException) -> None:
        outcome.failed += 1
        c_failed.inc()
        outcome.errors.append((spec.points[idx].label, repr(exc)))
        obs.emit("sweep_point", -1, key=spec.points[idx].label,
                 info=f"failed: {exc!r}", time=0.0)
        if config.fail_fast:
            raise SweepError(
                f"sweep point {spec.points[idx].label} failed after "
                f"{config.retries} retries: {exc!r}"
            ) from exc

    if config.jobs == 1 or len(pending) <= 1:
        for idx in pending:
            attempt = 0
            while True:
                try:
                    # In-process execution round-trips through the same
                    # canonical JSON codec as the worker and cache paths
                    # (sorted keys), so all three are byte-identical.
                    record = json.loads(
                        json.dumps(execute_point(spec.points[idx]), sort_keys=True)
                    )
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    attempt += 1
                    if attempt > config.retries:
                        fail(idx, exc)
                        break
                    outcome.retried += 1
                    c_retried.inc()
                    time.sleep(backoff.delay(attempt))
                else:
                    finish(idx, record)
                    break
    else:
        attempts = {idx: 0 for idx in pending}
        with ProcessPoolExecutor(max_workers=config.jobs) as pool:
            futures = {
                pool.submit(_point_job, spec.points[idx].to_dict()): idx
                for idx in pending
            }
            try:
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for fut in done:
                        idx = futures.pop(fut)
                        exc = fut.exception()
                        if exc is None:
                            finish(idx, fut.result())
                            continue
                        attempts[idx] += 1
                        if attempts[idx] > config.retries:
                            fail(idx, exc)
                            continue
                        outcome.retried += 1
                        c_retried.inc()
                        time.sleep(backoff.delay(attempts[idx]))
                        futures[
                            pool.submit(_point_job, spec.points[idx].to_dict())
                        ] = idx
            except SweepError:
                for fut in futures:
                    fut.cancel()
                raise

    outcome.wall_time = time.perf_counter() - t0
    obs.emit(
        "sweep_end", -1, key=spec.name,
        info={"executed": outcome.executed, "cached": outcome.cached,
              "failed": outcome.failed},
        time=0.0,
    )
    return outcome
