"""The parallel sweep engine: fan a :class:`~repro.sweep.spec.SweepSpec`
out over supervised worker processes, with a content-addressed result
cache and a crash-safe write-ahead journal.

Execution contract
------------------

- **Determinism.**  Every point is fully resolved before dispatch and each
  simulation seeds its own :class:`~repro.sim.rng.RngStreams` from the
  point's parameters, so a point's result record is bit-identical whether
  it runs in-process (``jobs=1``), in a worker process, is replayed from
  the cache, or is recovered from the journal on ``--resume`` (records
  round-trip through canonical JSON, which is exact for finite doubles).
  The test suite asserts parallel == serial == resumed.
- **Caching.**  With a :class:`~repro.sweep.cache.ResultCache`, points
  whose :func:`~repro.sweep.spec.point_key` is already stored are not
  simulated at all; fresh results are stored after execution.
- **Supervision.**  The parallel path runs under a
  :class:`~repro.supervise.pool.WorkerSupervisor`: a worker killed by
  SIGKILL/OOM is respawned (not ``BrokenProcessPool``), a point silent
  past ``config.heartbeat_timeout`` wall seconds is terminated and
  retried, and failures are classified — *transient* ones retry through
  the shared :class:`~repro.runtime.comm_engine.BackoffPolicy` schedule,
  *deterministic* ones (:func:`~repro.supervise.pool.classify_failure`)
  fail immediately.
- **Crash safety.**  With ``journal=``, per-point attempts and outcomes
  are journaled write-ahead (:class:`~repro.supervise.journal.
  SweepJournal`); SIGINT/SIGTERM flush the journal and print a resume
  hint, and ``resume=True`` replays the journal (plus the cache) to skip
  completed points.  Final :class:`SweepOutcome` persistence
  (:meth:`SweepOutcome.save`) is atomic (temp file + ``os.replace``).
- **Progress.**  The engine emits ``sweep_start`` / ``sweep_point`` /
  ``sweep_end`` events and ``sweep.*`` counters on the observability bus
  (free no-ops on the default :data:`~repro.obs.bus.NULL_BUS`); the
  supervisor adds ``watchdog_worker`` events and ``supervise.*`` counters.
- **Failure.**  A point that keeps failing transiently is retried up to
  ``retries`` times; exhausted or deterministically failed points either
  abort the sweep (``fail_fast``) or are recorded as ``None``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.codec import canonical_json
from repro.config import SweepConfig
from repro.errors import SweepError, SweepInterrupted
from repro.obs.bus import NULL_BUS
from repro.runtime.comm_engine import BackoffPolicy
from repro.supervise.journal import SweepJournal
from repro.supervise.pool import WorkerSupervisor, is_deterministic_failure
from repro.sweep.cache import ResultCache
from repro.sweep.spec import SweepPoint, SweepSpec, point_key

__all__ = ["PointView", "SweepOutcome", "execute_point", "run_sweep"]


def _record_of(result) -> dict:
    """Flatten a benchmark result dataclass into a JSON-able record.

    Only plain measurement fields survive — the config is identified by
    the cache key, and summaries regenerate from the record.
    """
    rec = {}
    for f in dataclasses.fields(result):
        if f.name == "config":
            continue
        value = getattr(result, f.name)
        rec[f.name] = value
    return rec


def execute_point(point: SweepPoint, progress=None) -> dict:
    """Run one sweep point's simulation and return its result record.

    The point's kind resolves through the :mod:`repro.workloads` registry,
    so any registered workload — builtin or scenario — sweeps identically.
    ``progress`` is an optional reporter with the
    :class:`~repro.obs.progress.ProgressReporter` install/finish contract;
    it is forwarded to workloads declaring ``accepts_progress`` (hicma)
    and is how supervised workers stay live during long points.
    """
    from repro.workloads import get_workload

    spec = get_workload(point.kind)
    cfg = spec.build_config(**point.params)
    kwargs = {"progress": progress} if spec.accepts_progress else {}
    if point.partitions is not None:
        # Forwarded only when set; a workload without accepts_partitions
        # raises ConfigError (a deterministic failure — no retries).
        kwargs["partitions"] = point.partitions
    result = spec.run(point.backend, cfg, **kwargs)
    return _record_of(result)


class PointView:
    """Attribute access over a result record (harness compatibility).

    The figure benchmarks were written against result dataclasses
    (``r.time_to_solution``, ``r.mean_flow_latency``); cached sweeps hand
    back plain dicts.  This view restores the attribute surface without
    re-running anything.
    """

    __slots__ = ("record",)

    def __init__(self, record: dict):
        self.record = record

    def __getattr__(self, name: str):
        try:
            return self.record[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def mean_flow_latency(self) -> float:
        """Mean end-to-end latency (seconds)."""
        return self.record.get("flow_latency", {}).get("mean", 0.0)

    def __repr__(self) -> str:
        return f"PointView({self.record!r})"


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in spec order."""

    spec: SweepSpec
    #: One result record per point (``None`` for a failed point when
    #: ``fail_fast=False``).
    records: list
    #: Content-address key per point.
    keys: list
    executed: int = 0
    cached: int = 0
    #: Points recovered from the write-ahead journal on resume.
    resumed: int = 0
    failed: int = 0
    retried: int = 0
    wall_time: float = 0.0
    errors: list = field(default_factory=list)

    def views(self) -> list:
        """Records wrapped for attribute access, in spec order."""
        return [PointView(r) if r is not None else None for r in self.records]

    def summary(self) -> str:
        """One-line report."""
        resumed = f"{self.resumed} resumed, " if self.resumed else ""
        return (
            f"sweep[{self.spec.name}] {len(self.spec)} points: "
            f"{self.executed} simulated, {self.cached} cached, {resumed}"
            f"{self.failed} failed in {self.wall_time:.1f}s wall"
        )

    def to_doc(self) -> dict:
        """JSON-plain document form (the :meth:`save` payload).

        ``wall_time`` is deliberately excluded: the record set of a sweep
        is content, wall time is circumstance — two runs of the same grid
        (one interrupted and resumed, one not) must produce byte-identical
        ``records``/``keys`` sections.
        """
        return {
            "spec": {
                "name": self.spec.name,
                "points": [p.to_dict() for p in self.spec.points],
            },
            "keys": list(self.keys),
            "records": list(self.records),
            "executed": self.executed,
            "cached": self.cached,
            "resumed": self.resumed,
            "failed": self.failed,
            "retried": self.retried,
            "errors": [list(e) for e in self.errors],
        }

    def save(self, path: "str | Path") -> Path:
        """Atomically persist the outcome as canonical JSON.

        Temp file + ``os.replace`` (the :class:`~repro.sweep.cache.
        ResultCache` idiom), so an interrupt mid-write never leaves a
        corrupt outcome file — a reader sees the old document or the new
        one, never a torn hybrid.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(canonical_json(self.to_doc()) + "\n")
        os.replace(tmp, path)
        return path

    @staticmethod
    def load_doc(path: "str | Path") -> dict:
        """Read a document previously written by :meth:`save`."""
        return json.loads(Path(path).read_text())


def _resume_hint(spec_name: str, journal_path: Path) -> str:
    """The one-line runbook printed when a journaled sweep is interrupted."""
    return (
        f"sweep[{spec_name}] interrupted; journal flushed to {journal_path} — "
        f"resume with: python -m repro sweep {spec_name} "
        f"--journal {journal_path} --resume"
    )


class _SignalGuard:
    """Turn SIGINT/SIGTERM into :class:`~repro.errors.SweepInterrupted`
    for the duration of a journaled sweep (main thread only — elsewhere,
    e.g. under pytest-xdist workers, signals are left alone)."""

    def __init__(self, active: bool):
        self.active = active and threading.current_thread() is threading.main_thread()
        self._previous: dict = {}

    def __enter__(self) -> "_SignalGuard":
        if not self.active:
            return self

        def _raise(signum, _frame):
            raise SweepInterrupted(f"received {signal.Signals(signum).name}")

        for signum in (signal.SIGINT, signal.SIGTERM):
            self._previous[signum] = signal.signal(signum, _raise)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous.clear()


def run_sweep(
    spec: SweepSpec,
    config: Optional[SweepConfig] = None,
    cache: "ResultCache | None" = None,
    obs: Any = NULL_BUS,
    backoff: Optional[BackoffPolicy] = None,
    journal: "SweepJournal | str | Path | None" = None,
    resume: bool = False,
) -> SweepOutcome:
    """Execute every point of ``spec`` and return records in spec order.

    ``cache=None`` with ``config.cache_enabled`` builds the default
    :class:`~repro.sweep.cache.ResultCache`; pass an instance to control
    the location, or set ``cache_enabled=False`` to simulate every point.

    ``journal`` (a path or :class:`~repro.supervise.journal.SweepJournal`)
    enables the crash-safe write-ahead log; ``resume=True`` replays it
    first, restoring completed points without re-simulation, and requires
    ``journal``.  While journaling, SIGINT/SIGTERM are caught, the journal
    is flushed, and a resume hint is printed before the interrupt
    propagates as :class:`~repro.errors.SweepInterrupted`.
    """
    config = config or SweepConfig()
    if cache is None and config.cache_enabled:
        cache = ResultCache(config.cache_dir)
    if backoff is None:
        # Wall-clock retry schedule: 50 ms base, doubling, 2 s cap.
        backoff = BackoffPolicy(base=0.05, factor=2.0, max_delay=2.0)
    if resume and journal is None:
        raise SweepError("resume=True requires a journal")
    t0 = time.perf_counter()
    keys = [point_key(p) for p in spec.points]
    outcome = SweepOutcome(spec=spec, records=[None] * len(keys), keys=keys)
    c_exec = obs.counter("sweep.executed")
    c_cached = obs.counter("sweep.cached")
    c_resumed = obs.counter("sweep.resumed")
    c_failed = obs.counter("sweep.failed")
    c_retried = obs.counter("sweep.retried")

    # -- journal / resume --------------------------------------------------
    if journal is not None and not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)
    state = None
    if journal is not None:
        begin_entry = SweepJournal.begin_entry(spec.name, keys, config.to_dict())
        if resume:
            state = journal.load_for_resume(begin_entry)
        journal.open(truncate=not resume)
        from repro.faults.plans import harness_chaos_from_env

        for fault in harness_chaos_from_env():
            if fault.kind == "journal_truncate" and fault.should_fire(fault.point_index):
                fault.mark_fired()
                journal._truncate_at = fault.point_index
        if state is None or state.begin is None:
            journal.begin(spec.name, keys, config.to_dict())

    obs.emit(
        "sweep_start", -1, key=spec.name,
        info={"points": len(keys), "jobs": config.jobs,
              "resumed": len(state.completed) if state else 0}, time=0.0,
    )

    pending = []  # indices that need simulation
    for idx, key in enumerate(keys):
        if state is not None and idx in state.completed:
            outcome.records[idx] = state.completed[idx]
            outcome.resumed += 1
            c_resumed.inc()
            obs.emit("sweep_point", -1, key=spec.points[idx].label,
                     info="resumed", time=0.0)
            continue
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            outcome.records[idx] = hit
            outcome.cached += 1
            c_cached.inc()
            obs.emit("sweep_point", -1, key=spec.points[idx].label,
                     info="cached", time=0.0)
        else:
            pending.append(idx)

    def finish(idx: int, record: dict) -> None:
        outcome.records[idx] = record
        outcome.executed += 1
        c_exec.inc()
        if cache is not None:
            cache.put(keys[idx], spec.points[idx].to_dict(), record)
        if journal is not None:
            journal.outcome_ok(idx, record)
        obs.emit("sweep_point", -1, key=spec.points[idx].label,
                 info="executed", time=0.0)

    def fail(idx: int, error: str) -> None:
        outcome.failed += 1
        c_failed.inc()
        outcome.errors.append((spec.points[idx].label, error))
        if journal is not None:
            journal.outcome_failed(idx, error)
        obs.emit("sweep_point", -1, key=spec.points[idx].label,
                 info=f"failed: {error}", time=0.0)
        if config.fail_fast:
            raise SweepError(
                f"sweep point {spec.points[idx].label} failed: {error}"
            )

    def journal_attempt(idx: int, attempt: int) -> None:
        if journal is not None:
            journal.attempt(idx, attempt)

    try:
        with _SignalGuard(journal is not None):
            if config.jobs == 1 or len(pending) <= 1:
                _run_serial(spec, pending, config, backoff, outcome,
                            finish, fail, journal_attempt, c_retried)
            else:
                def on_retry(_idx: int, _attempt: int, _reason: str) -> None:
                    outcome.retried += 1
                    c_retried.inc()

                with WorkerSupervisor(
                    config.jobs,
                    retries=config.retries,
                    backoff=backoff,
                    heartbeat_timeout=config.heartbeat_timeout,
                    obs=obs,
                ) as pool:
                    pool.run(
                        [(idx, spec.points[idx].to_dict()) for idx in pending],
                        on_ok=finish,
                        on_failed=fail,
                        on_attempt=journal_attempt,
                        on_retry=on_retry,
                    )
    except SweepInterrupted as exc:
        if journal is not None:
            journal.interrupted(str(exc))
            print(_resume_hint(spec.name, journal.path), file=sys.stderr,
                  flush=True)
        raise
    finally:
        if journal is not None and not isinstance(
            sys.exc_info()[1], SweepInterrupted
        ):
            journal.end(outcome.executed, outcome.cached, outcome.failed)
        if journal is not None:
            journal.close()

    outcome.wall_time = time.perf_counter() - t0
    obs.emit(
        "sweep_end", -1, key=spec.name,
        info={"executed": outcome.executed, "cached": outcome.cached,
              "resumed": outcome.resumed, "failed": outcome.failed},
        time=0.0,
    )
    return outcome


def _run_serial(
    spec: SweepSpec,
    pending: list,
    config: SweepConfig,
    backoff: BackoffPolicy,
    outcome: SweepOutcome,
    finish,
    fail,
    journal_attempt,
    c_retried,
) -> None:
    """The in-process path: same classification policy as the supervisor —
    deterministic failures fail fast, transient ones retry with backoff."""
    for idx in pending:
        attempt = 0
        while True:
            attempt += 1
            journal_attempt(idx, attempt)
            try:
                # In-process execution round-trips through the same
                # canonical JSON codec as the worker and cache paths
                # (sorted keys), so all three are byte-identical.
                record = json.loads(
                    json.dumps(execute_point(spec.points[idx]), sort_keys=True)
                )
            except SweepInterrupted:
                raise
            except Exception as exc:  # noqa: BLE001 - surfaced below
                if is_deterministic_failure(exc) or attempt > config.retries:
                    fail(idx, repr(exc))
                    break
                outcome.retried += 1
                c_retried.inc()
                time.sleep(backoff.delay(attempt))
            else:
                finish(idx, record)
                break
