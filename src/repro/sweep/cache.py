"""Content-addressed on-disk result cache for sweep points.

Every cached record is keyed by :func:`stable_hash` of the *fully resolved*
experiment description: the workload parameters with every environment-
dependent default (paper scale, totals, platform) expanded, the complete
platform cost model (``Network``/``Mpi``/``Lci``/``Runtime``/``Compute``
dataclasses, plus any ``Fault`` plan), and the code version from
:mod:`repro._version`.  Two consequences:

- a cache hit can only ever be served to a byte-identical experiment —
  changing any calibration constant, workload knob, or the package version
  changes the key, so "invalidation" is automatic and needs no manifest;
- the hash is reproducible across processes and machines (canonical JSON,
  shortest-round-trip float repr), which the test suite asserts by hashing
  in a subprocess.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON document per point with
the key, the code version, the resolved spec payload, and the result record.
Corrupted or truncated entries (killed writer, disk trouble) are deleted on
first read and treated as misses; writes go through a temp file +
``os.replace`` so readers never observe a partial record.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro._version import __version__
from repro.codec import stable_hash as _stable_hash

__all__ = ["stable_hash", "CacheStats", "ResultCache", "default_cache_dir"]


def stable_hash(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Canonical = sorted keys, no whitespace, ``repr``-shortest floats (the
    Python default), no NaN/Infinity (they are not valid cache-key
    material and raise).  Stable across processes, platforms, and runs.
    Delegates to :func:`repro.codec.stable_hash` — the repo-wide codec —
    and is kept here as the historical import location.
    """
    return _stable_hash(payload)


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE_DIR`` or ``.repro-cache/sweep`` under the cwd."""
    env = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if env:
        return Path(env)
    return Path(".repro-cache") / "sweep"


@dataclass(frozen=True)
class CacheStats:
    """Summary of a cache directory's contents."""

    root: str
    entries: int
    total_bytes: int
    versions: tuple

    def summary(self) -> str:
        """One-line human-readable report."""
        vers = ", ".join(self.versions) if self.versions else "-"
        return (
            f"cache {self.root}: {self.entries} entries, "
            f"{self.total_bytes / 1024:.1f} KiB, versions [{vers}]"
        )


class ResultCache:
    """A content-addressed store of sweep-point result records."""

    def __init__(self, root: "Path | str | None" = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """On-disk location of ``key``'s record."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached result record for ``key``, or ``None`` on miss.

        A corrupted entry (unparsable JSON, wrong shape, key mismatch) is
        deleted and reported as a miss — the point simply re-runs.
        """
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._evict(path)
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("key") != key
            or "result" not in doc
        ):
            self._evict(path)
            return None
        return doc["result"]

    def put(self, key: str, spec: Any, result: dict) -> None:
        """Atomically store ``result`` under ``key``.

        ``spec`` (the resolved point payload the key was hashed from) is
        stored alongside for human inspection and debugging; only ``key``
        addresses the record.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"key": key, "version": __version__, "spec": spec, "result": result}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True))
        os.replace(tmp, path)

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _entries(self):
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir():
                yield from sorted(sub.glob("*.json"))

    def stats(self) -> CacheStats:
        """Walk the cache directory and summarize its contents."""
        entries = 0
        total = 0
        versions = set()
        for path in self._entries():
            entries += 1
            total += path.stat().st_size
            try:
                versions.add(json.loads(path.read_text()).get("version", "?"))
            except (OSError, ValueError):
                versions.add("corrupt")
        return CacheStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total,
            versions=tuple(sorted(versions)),
        )

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            self._evict(path)
            removed += 1
        return removed
