"""Sweep specifications: points, grids, and content-address keys.

A :class:`SweepPoint` is one experiment configuration — a workload kind
(any name registered with :mod:`repro.workloads`), a backend, and the
workload's parameters.  A :class:`SweepSpec` is an ordered collection of
points; order is part of the contract (per-point seeds and result lists
follow it).

Everything environment-dependent is resolved *eagerly* when a grid is
built — ``REPRO_PAPER_SCALE`` totals, matrix dimensions, platform cost
models — so a point's :func:`point_key` pins down the simulation exactly,
and executing the point in a worker process cannot drift from executing it
in-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config import (
    PlatformConfig,
    expanse_platform,
    paper_scale_enabled,
    scaled_platform,
)
from repro.errors import SweepError
from repro.sweep.cache import stable_hash
from repro._version import __version__

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "point_key",
    "fig4_grid",
    "fig5_grid",
    "pingpong_grid",
    "taskbench_grid",
    "named_grid",
    "GRID_BUILDERS",
]


@dataclass(frozen=True)
class SweepPoint:
    """One experiment configuration inside a sweep."""

    #: Workload kind: any registered workload name (``"hicma"``,
    #: ``"taskbench"``, ...).
    kind: str
    #: Communication backend: ``"mpi"`` or ``"lci"``.
    backend: str
    #: Fully resolved workload parameters (the benchmark config's fields).
    params: dict = field(default_factory=dict)
    #: Partitioned PDES worker count (``None`` = serial).  Results are
    #: bit-identical either way, but the execution engine is part of the
    #: point's identity when explicitly requested.
    partitions: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.workloads import workload_names

        if self.kind not in workload_names():
            raise SweepError(f"unknown sweep point kind {self.kind!r}")
        if self.backend not in ("mpi", "lci"):
            raise SweepError(f"unknown backend {self.backend!r}")
        if self.partitions is not None and (
            not isinstance(self.partitions, int)
            or isinstance(self.partitions, bool)
            or self.partitions < 1
        ):
            raise SweepError(
                f"partitions must be a positive int or None "
                f"(got {self.partitions!r})"
            )

    @property
    def label(self) -> str:
        """Short human-readable identifier for progress reporting."""
        parts = [f"{k}={v}" for k, v in sorted(self.params.items())]
        if self.partitions is not None:
            parts.append(f"partitions={self.partitions}")
        return f"{self.kind}[{self.backend}] " + " ".join(parts)

    def to_dict(self) -> dict:
        """Plain-dict form (picklable / JSON-able) for worker processes.

        ``partitions`` appears only when set, so documents written by
        serial sweeps are byte-identical to pre-partitioning ones.
        """
        doc = {"kind": self.kind, "backend": self.backend, "params": dict(self.params)}
        if self.partitions is not None:
            doc["partitions"] = self.partitions
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "SweepPoint":
        """Inverse of :meth:`to_dict`."""
        return cls(kind=doc["kind"], backend=doc["backend"],
                   params=dict(doc["params"]),
                   partitions=doc.get("partitions"))


@dataclass(frozen=True)
class SweepSpec:
    """An ordered, named collection of sweep points."""

    name: str
    points: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))

    def __len__(self) -> int:
        return len(self.points)


def resolve_platform(point: SweepPoint) -> PlatformConfig:
    """The platform a point executes on — mirrors the figure harnesses.

    HiCMA points use the full Expanse model at paper scale and the 8-fat-
    core scaled platform otherwise; ping-pong/overlap points use the
    default scaled platform, exactly as their ``run_*_benchmark`` helpers
    do when no platform is passed.
    """
    nodes = int(point.params.get("num_nodes", 2))
    if point.kind == "hicma":
        if paper_scale_enabled():
            return expanse_platform(num_nodes=nodes)
        return scaled_platform(num_nodes=nodes, cores_per_node=8)
    return scaled_platform(num_nodes=nodes)


def point_key(point: SweepPoint) -> str:
    """The point's content-address: a stable hash of its resolved payload.

    Covers the workload kind/backend/params, the complete platform cost
    model (every ``Network``/``Mpi``/``Lci``/``Runtime``/``Compute`` field,
    so recalibration invalidates old results), and the package version.
    """
    platform = resolve_platform(point)
    payload = {
        "kind": point.kind,
        "backend": point.backend,
        "params": dict(point.params),
        "platform": platform.to_dict(),
        "version": __version__,
    }
    if point.partitions is not None:
        # Only when set: keys of serial points (and every historical
        # cache entry) stay exactly what they were before partitioning.
        payload["partitions"] = point.partitions
    return stable_hash(payload)


# -- grid builders (mirror benchmarks/conftest.py dimensions) --------------


def _fig4_dimensions() -> tuple:
    if paper_scale_enabled():
        return 360_000, [1200, 1500, 1800, 2400, 3000, 3600, 4500, 4800, 6000], [1200, 2400]
    return 72_000, [450, 600, 720, 1200, 1800, 3000], [600, 1200]


def _fig5_dimensions() -> tuple:
    if paper_scale_enabled():
        node_tiles = {
            n: [1200, 1500, 1800, 2400, 3000, 3600, 4500, 6000]
            for n in (1, 2, 4, 8, 16, 32)
        }
        return 360_000, node_tiles
    return 144_000, {
        1: [2400, 3600, 6000],
        2: [2400, 3600, 6000],
        4: [1440, 2400, 3600],
        8: [1200, 1440, 2400, 3600],
        16: [900, 1200, 1440, 2400],
    }


def _hicma_point(backend: str, matrix: int, tile: int, nodes: int, mt: bool = False) -> SweepPoint:
    return SweepPoint(
        kind="hicma",
        backend=backend,
        params={
            "matrix_size": matrix,
            "tile_size": tile,
            "num_nodes": nodes,
            "multithreaded_activate": mt,
            "seed": 0,
        },
    )


def fig4_grid() -> SweepSpec:
    """The Fig. 4a/4b tile scan at 16 nodes, both backends, plus the
    §6.4.3 multithreaded-ACTIVATE points."""
    matrix, tiles, mt_tiles = _fig4_dimensions()
    points = []
    for backend in ("mpi", "lci"):
        for tile in tiles:
            points.append(_hicma_point(backend, matrix, tile, 16))
        for tile in mt_tiles:
            points.append(_hicma_point(backend, matrix, tile, 16, mt=True))
    return SweepSpec(name="fig4", points=tuple(points))


def fig5_grid() -> SweepSpec:
    """The Fig. 5a/5b / Table 2 node scan with per-node tile lists."""
    matrix, node_tiles = _fig5_dimensions()
    points = []
    for backend in ("mpi", "lci"):
        for nodes, tiles in node_tiles.items():
            for tile in tiles:
                points.append(_hicma_point(backend, matrix, tile, nodes))
    return SweepSpec(name="fig5", points=tuple(points))


def pingpong_grid(
    fragments: Optional[list] = None,
    total_bytes: Optional[int] = None,
    streams: int = 1,
    iterations: int = 5,
) -> SweepSpec:
    """Ping-pong bandwidth across fragment sizes, both backends (Fig. 2a)."""
    from repro.bench.pingpong import PingPongConfig, default_granularities

    fragments = list(fragments) if fragments else default_granularities()
    points = []
    for frag in fragments:
        # Resolve the per-iteration total eagerly so the cache key does not
        # depend on the REPRO_PAPER_SCALE environment of a later rerun.
        resolved_total = PingPongConfig(
            fragment_size=frag, total_bytes=total_bytes
        ).resolved_total()
        for backend in ("mpi", "lci"):
            points.append(
                SweepPoint(
                    kind="pingpong",
                    backend=backend,
                    params={
                        "fragment_size": int(frag),
                        "total_bytes": int(resolved_total),
                        "streams": int(streams),
                        "iterations": int(iterations),
                        "sync": True,
                        "num_nodes": 2,
                        "seed": 0,
                    },
                )
            )
    return SweepSpec(name="pingpong", points=tuple(points))


def _scenario_point(kind: str, backend: str, **params) -> SweepPoint:
    """A fully resolved point for a registered scenario workload.

    Builds the workload's config (so defaults and validation happen
    eagerly) and pins *every* field into the point's params, keeping the
    content-address independent of later default changes.
    """
    from repro.workloads import get_workload

    cfg = get_workload(kind).build_config(**params)
    return SweepPoint(kind=kind, backend=backend, params=cfg.to_dict())


def taskbench_grid() -> SweepSpec:
    """The Task Bench-style scenario grid: width × depth × dependence
    pattern on the ``taskbench`` workload, plus ``stencil`` and
    ``forkjoin`` companion points, both backends.

    Every point is CI-scale small (tens of tasks), so the whole grid runs
    in seconds while still sweeping the latency-bound → compute-bound
    axis the Task Bench methodology targets.
    """
    points = []
    for backend in ("mpi", "lci"):
        for pattern in ("stencil", "fft", "random"):
            for width in (4, 8):
                for depth in (4, 8):
                    points.append(_scenario_point(
                        "taskbench", backend,
                        width=width, depth=depth, pattern=pattern,
                        num_nodes=4,
                    ))
        for grid in (4, 8):
            points.append(_scenario_point(
                "stencil", backend, grid=grid, steps=4, num_nodes=4,
            ))
        for depth in (3, 4):
            points.append(_scenario_point(
                "forkjoin", backend, fanout=3, depth=depth, num_nodes=4,
            ))
    return SweepSpec(name="taskbench", points=tuple(points))


GRID_BUILDERS = {
    "fig4": fig4_grid,
    "fig5": fig5_grid,
    "pingpong": pingpong_grid,
    "taskbench": taskbench_grid,
}


def named_grid(name: str, **kwargs) -> SweepSpec:
    """Build one of the predefined grids by name (CLI entry point)."""
    try:
        builder = GRID_BUILDERS[name]
    except KeyError:
        raise SweepError(
            f"unknown grid {name!r}; choose from {sorted(GRID_BUILDERS)}"
        ) from None
    return builder(**kwargs)
