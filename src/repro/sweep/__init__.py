"""``repro.sweep`` — the parallel experiment-sweep engine.

Every headline figure of the paper is a *sweep*: the same deterministic
simulation re-run over a grid of configurations (tile scans × node counts
× backends).  This package turns those grids into first-class objects and
executes them

- **in parallel** over a process pool (:func:`~repro.sweep.engine.run_sweep`
  with ``SweepConfig(jobs=N)``) — each point is an independent simulation,
  so sweeps scale to every idle core;
- **at most once** — a content-addressed on-disk cache
  (:class:`~repro.sweep.cache.ResultCache`) keyed by a stable hash of the
  fully resolved configuration plus the code version means a point shared
  by several figures (or re-requested by a rerun) is simulated exactly
  once;
- **deterministically** — records are bit-identical whether a point ran
  serially, in a worker process, or came from cache, which the test suite
  asserts.

Entry points: ``python -m repro sweep`` (CLI), the grid builders in
:mod:`repro.sweep.spec`, and :func:`repro.sweep.engine.run_sweep`.  See
``docs/performance.md`` for usage and cache layout.
"""

from repro.config import SweepConfig
from repro.sweep.cache import CacheStats, ResultCache, default_cache_dir, stable_hash
from repro.sweep.engine import PointView, SweepOutcome, execute_point, run_sweep
from repro.sweep.spec import (
    GRID_BUILDERS,
    SweepPoint,
    SweepSpec,
    fig4_grid,
    fig5_grid,
    named_grid,
    pingpong_grid,
    point_key,
)

__all__ = [
    "SweepConfig",
    "SweepPoint",
    "SweepSpec",
    "SweepOutcome",
    "PointView",
    "ResultCache",
    "CacheStats",
    "stable_hash",
    "default_cache_dir",
    "point_key",
    "execute_point",
    "run_sweep",
    "fig4_grid",
    "fig5_grid",
    "pingpong_grid",
    "named_grid",
    "GRID_BUILDERS",
]
