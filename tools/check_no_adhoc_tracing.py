#!/usr/bin/env python3
"""Lint: all instrumentation must go through the ``repro.obs`` bus.

Fails (exit 1) when code under ``src/repro`` — outside ``src/repro/obs``
itself — reintroduces an ad-hoc tracing pattern:

- ``<anything>.trace.record(`` — the pre-obs inline call-site pattern; the
  ``TraceRecorder`` facade still exists for *reading* traces, but new events
  must be emitted via ``ctx.obs.emit(...)``;
- ``message_log`` — the deprecated private ``Fabric`` log.

A line ending in a ``# obs-allow-adhoc`` pragma is exempt; the legacy
compatibility shims carry it.  Run as::

    python tools/check_no_adhoc_tracing.py [root]

where ``root`` defaults to the repository's ``src/repro``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: (pattern, explanation) pairs; matched per line.
PATTERNS = [
    (
        re.compile(r"\.trace\.record\("),
        "inline trace.record() call — emit via the obs bus (ctx.obs.emit)",
    ),
    (
        re.compile(r"\bmessage_log\b"),
        "private message_log — consume wire_msg events from the obs bus",
    ),
]

PRAGMA = "obs-allow-adhoc"


def check_tree(root: Path) -> list[str]:
    """Return one violation string per offending line under ``root``."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] == "obs":
            continue  # the bus itself
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if PRAGMA in line:
                continue
            for pattern, why in PATTERNS:
                if pattern.search(line):
                    violations.append(f"{path}:{lineno}: {why}\n    {line.strip()}")
    return violations


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent / "src" / "repro"
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(
            f"\n{len(violations)} ad-hoc tracing pattern(s) found — route them "
            "through repro.obs (or tag intentional shims with # obs-allow-adhoc)."
        )
        return 1
    print("ok: no ad-hoc tracing patterns outside repro/obs")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
