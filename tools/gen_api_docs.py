#!/usr/bin/env python
"""Generate docs/api.md: a compact API reference from the package's
docstrings (no external dependencies — offline-friendly).

Modules listed in ``STRICT_PACKAGES`` must document every public symbol —
a missing module/class/function/method docstring there fails the build.

Usage:  python tools/gen_api_docs.py [output]
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Dotted prefixes where every public symbol must carry a docstring.
STRICT_PACKAGES = ("repro.api", "repro.explore", "repro.supervise",
                   "repro.sweep")


def first_line(doc: str | None) -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0].rstrip(".")


def signature(node: ast.FunctionDef) -> str:
    args = []
    a = node.args
    for arg in a.posonlyargs + a.args:
        args.append(arg.arg)
    if a.vararg:
        args.append("*" + a.vararg.arg)
    for arg in a.kwonlyargs:
        args.append(arg.arg)
    if a.kwarg:
        args.append("**" + a.kwarg.arg)
    # Drop self/cls for readability.
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return f"({', '.join(args)})"


def render_module(path: pathlib.Path, missing: list[str]) -> list[str]:
    rel = path.relative_to(SRC.parent)
    modname = str(rel.with_suffix("")).replace("/", ".")
    if modname.endswith(".__init__"):
        modname = modname[: -len(".__init__")]
    strict = modname.startswith(STRICT_PACKAGES)
    tree = ast.parse(path.read_text())
    lines = [f"### `{modname}`", ""]
    moddoc = first_line(ast.get_docstring(tree))
    if moddoc:
        lines += [moddoc + ".", ""]
    elif strict:
        missing.append(f"{modname}: module docstring")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            doc = first_line(ast.get_docstring(node))
            if strict and not doc:
                missing.append(f"{modname}.{node.name}")
            lines.append(f"- **class `{node.name}`** — {doc}")
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and not item.name.startswith("_")
                ):
                    itemdoc = first_line(ast.get_docstring(item))
                    if strict and not itemdoc:
                        missing.append(f"{modname}.{node.name}.{item.name}")
                    lines.append(
                        f"  - `{item.name}{signature(item)}` — {itemdoc}"
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and not node.name.startswith("_"):
            doc = first_line(ast.get_docstring(node))
            if strict and not doc:
                missing.append(f"{modname}.{node.name}")
            lines.append(
                f"- `{node.name}{signature(node)}` — {doc}"
            )
    lines.append("")
    return lines


def main(out: str) -> None:
    lines = [
        "# API reference",
        "",
        "Auto-generated from docstrings by `tools/gen_api_docs.py` — do not",
        "edit by hand; re-run the script after changing public APIs.",
        "",
    ]
    missing: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        lines += render_module(path, missing)
    if missing:
        for entry in missing:
            print(f"missing docstring: {entry}", file=sys.stderr)
        sys.exit(1)
    pathlib.Path(out).write_text("\n".join(lines))
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "docs/api.md")
