#!/usr/bin/env python
"""Generate docs/api.md: a compact API reference from the package's
docstrings (no external dependencies — offline-friendly).

Usage:  python tools/gen_api_docs.py [output]
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def first_line(doc: str | None) -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0].rstrip(".")


def signature(node: ast.FunctionDef) -> str:
    args = []
    a = node.args
    for arg in a.posonlyargs + a.args:
        args.append(arg.arg)
    if a.vararg:
        args.append("*" + a.vararg.arg)
    for arg in a.kwonlyargs:
        args.append(arg.arg)
    if a.kwarg:
        args.append("**" + a.kwarg.arg)
    # Drop self/cls for readability.
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return f"({', '.join(args)})"


def render_module(path: pathlib.Path) -> list[str]:
    rel = path.relative_to(SRC.parent)
    modname = str(rel.with_suffix("")).replace("/", ".")
    if modname.endswith(".__init__"):
        modname = modname[: -len(".__init__")]
    tree = ast.parse(path.read_text())
    lines = [f"### `{modname}`", ""]
    moddoc = first_line(ast.get_docstring(tree))
    if moddoc:
        lines += [moddoc + ".", ""]
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            lines.append(f"- **class `{node.name}`** — {first_line(ast.get_docstring(node))}")
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and not item.name.startswith("_")
                ):
                    lines.append(
                        f"  - `{item.name}{signature(item)}` — "
                        f"{first_line(ast.get_docstring(item))}"
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and not node.name.startswith("_"):
            lines.append(
                f"- `{node.name}{signature(node)}` — {first_line(ast.get_docstring(node))}"
            )
    lines.append("")
    return lines


def main(out: str) -> None:
    lines = [
        "# API reference",
        "",
        "Auto-generated from docstrings by `tools/gen_api_docs.py` — do not",
        "edit by hand; re-run the script after changing public APIs.",
        "",
    ]
    for path in sorted(SRC.rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        lines += render_module(path)
    pathlib.Path(out).write_text("\n".join(lines))
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "docs/api.md")
