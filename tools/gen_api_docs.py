#!/usr/bin/env python
"""Generate docs/api.md and docs/workloads.md from the source tree.

``docs/api.md`` is a compact API reference rendered from docstrings (no
external dependencies — offline-friendly).  ``docs/workloads.md`` is the
scenario catalog rendered from the :mod:`repro.workloads` registry: each
registered :class:`WorkloadSpec` carries its own description, DAG sketch,
parameter docs, and example invocation, so the catalog can never describe
a workload the registry does not have.  ``tools/check_docs.py`` enforces
the converse (no registered workload missing from the catalog).

Modules listed in ``STRICT_PACKAGES`` must document every public symbol —
a missing module/class/function/method docstring there fails the build.

Usage:  python tools/gen_api_docs.py [api_out] [workloads_out]
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Dotted prefixes where every public symbol must carry a docstring.
STRICT_PACKAGES = ("repro.api", "repro.explore", "repro.sim.partition",
                   "repro.supervise", "repro.sweep", "repro.workloads")


def first_line(doc: str | None) -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0].rstrip(".")


def signature(node: ast.FunctionDef) -> str:
    args = []
    a = node.args
    for arg in a.posonlyargs + a.args:
        args.append(arg.arg)
    if a.vararg:
        args.append("*" + a.vararg.arg)
    for arg in a.kwonlyargs:
        args.append(arg.arg)
    if a.kwarg:
        args.append("**" + a.kwarg.arg)
    # Drop self/cls for readability.
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return f"({', '.join(args)})"


def render_module(path: pathlib.Path, missing: list[str]) -> list[str]:
    rel = path.relative_to(SRC.parent)
    modname = str(rel.with_suffix("")).replace("/", ".")
    if modname.endswith(".__init__"):
        modname = modname[: -len(".__init__")]
    strict = modname.startswith(STRICT_PACKAGES)
    tree = ast.parse(path.read_text())
    lines = [f"### `{modname}`", ""]
    moddoc = first_line(ast.get_docstring(tree))
    if moddoc:
        lines += [moddoc + ".", ""]
    elif strict:
        missing.append(f"{modname}: module docstring")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            doc = first_line(ast.get_docstring(node))
            if strict and not doc:
                missing.append(f"{modname}.{node.name}")
            lines.append(f"- **class `{node.name}`** — {doc}")
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and not item.name.startswith("_")
                ):
                    itemdoc = first_line(ast.get_docstring(item))
                    if strict and not itemdoc:
                        missing.append(f"{modname}.{node.name}.{item.name}")
                    lines.append(
                        f"  - `{item.name}{signature(item)}` — {itemdoc}"
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and not node.name.startswith("_"):
            doc = first_line(ast.get_docstring(node))
            if strict and not doc:
                missing.append(f"{modname}.{node.name}")
            lines.append(
                f"- `{node.name}{signature(node)}` — {doc}"
            )
    lines.append("")
    return lines


def render_workload(spec) -> list[str]:
    """One catalog section: prose, DAG sketch, parameter table, example."""
    lines = [f"## `{spec.name}`", "", spec.description.rstrip(".") + ".", ""]
    if spec.details:
        lines += [spec.details.strip(), ""]
    if spec.dag:
        lines += ["```", spec.dag.strip("\n"), "```", ""]
    lines += ["| parameter | default | description |",
              "|---|---|---|"]
    for param in spec.params():
        default = "*required*" if param.required else f"`{param.default!r}`"
        lines.append(f"| `--{param.name.replace('_', '-')}` | {default} | "
                     f"{param.doc} |")
    lines.append("")
    if spec.example:
        lines += ["Example:", "", "```console",
                  f"$ {spec.example.strip()}", "```", ""]
    if spec.tags:
        lines += ["Tags: " + ", ".join(f"`{t}`" for t in spec.tags), ""]
    return lines


def workloads_catalog() -> str:
    """Render the scenario catalog from the live workload registry."""
    sys.path.insert(0, str(SRC.parent))
    from repro.workloads import workload_specs

    specs = workload_specs()
    lines = [
        "# Scenario catalog",
        "",
        "Auto-generated from the workload registry by",
        "`tools/gen_api_docs.py` — do not edit by hand; re-run the script",
        "after registering or changing a workload.  `tools/check_docs.py`",
        "fails the build if this catalog and the registry disagree in",
        "either direction.",
        "",
        "Every workload below is one `WorkloadSpec` registered with",
        "`src/repro/workloads/registry.py:register`.  List them with",
        "`python -m repro workloads --params`, run one with",
        "`python -m repro run <name>`, sweep grids of them with",
        "`python -m repro sweep taskbench`, inject faults with",
        "`python -m repro chaos --workload <name>`, and explore schedules",
        "with `python -m repro explore <name>`.  The common flags",
        "`--backend`, `--nodes`, and `--seed` apply to every workload; the",
        "per-workload flags are listed in each parameter table.  See",
        "[architecture.md](architecture.md) for how the workloads layer",
        "fits into the stack.",
        "",
        f"{len(specs)} registered workloads: "
        + ", ".join(f"[`{s.name}`](#{s.name})" for s in specs) + ".",
        "",
    ]
    for spec in specs:
        lines += render_workload(spec)
    return "\n".join(lines).rstrip() + "\n"


def main(api_out: str, workloads_out: str) -> None:
    lines = [
        "# API reference",
        "",
        "Auto-generated from docstrings by `tools/gen_api_docs.py` — do not",
        "edit by hand; re-run the script after changing public APIs.",
        "",
    ]
    missing: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        lines += render_module(path, missing)
    if missing:
        for entry in missing:
            print(f"missing docstring: {entry}", file=sys.stderr)
        sys.exit(1)
    pathlib.Path(api_out).write_text("\n".join(lines))
    print(f"wrote {api_out} ({len(lines)} lines)")
    catalog = workloads_catalog()
    pathlib.Path(workloads_out).write_text(catalog)
    print(f"wrote {workloads_out} ({len(catalog.splitlines())} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "docs/api.md",
         sys.argv[2] if len(sys.argv) > 2 else "docs/workloads.md")
