#!/usr/bin/env python3
"""A/B-test the epoch-batched kernel against the frozen legacy kernel.

Spawns subprocesses with ``REPRO_SIM_CORE=legacy`` / ``batched`` (the
selection happens at import time, so each side needs its own interpreter)
and compares the two cores on identical workloads:

- **micro** — a pure-kernel typed-sleep loop; reports events/second for
  each core (min-of-N walls, i.e. best-of-reps) and the speedup ratio.
- **stack** — a full runtime run (layered DAG over the MPI and LCI
  backends) with observability on; asserts the complete observable
  fingerprint (makespan, task/event counts, wire bytes, and a SHA-256
  over every emitted obs event) is **bit-identical** across cores, and
  reports the full-stack events/second delta.
- **partition** — a catalog workload run serially and under the
  partitioned PDES engine (``partitions`` ∈ {2, 4}); asserts the
  SHA-256 fingerprint of the complete typed result — every field,
  ``events_processed`` included — is **bit-identical** per partition
  count, and reports min-of-N events/second for each engine.

Any fingerprint divergence exits 1 — the batched kernel's contract is
"same execution, faster", the partitioned engine's is "same results,
more processes", and this harness is the enforcement.

``--partition-batch`` runs a dedicated fourth mode instead: the batched
sync-window protocol (``PartitionConfig.window_batch``, default) against
the classic two-round-trip-per-window coordinator protocol
(``window_batch=1``) — fingerprints must be bit-identical, and the
report shows walls plus the coordinator round-trip reduction.

Run as::

    python tools/bench_ab.py [--smoke] [--reps 3] [--backend mpi|lci|both]
        [--partition-batch]

``--smoke`` shrinks both workloads to seconds of wall time (used by the
test suite); the default sizes give stable ratios for the performance
docs.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

CORES = ("legacy", "batched")


# ----------------------------------------------------------------------
# child side: one workload in one interpreter, JSON on stdout
# ----------------------------------------------------------------------

def _run_micro(total_events: int) -> dict:
    """Pure-kernel throughput: five processes doing typed sleeps."""
    from repro.sim.core import Simulator

    sim = Simulator()
    per_proc = total_events // 10  # 2 events per sleep (schedule + fire)

    def proc():
        for _ in range(per_proc):
            yield 1e-6

    for _ in range(5):
        sim.process(proc())
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {"events": sim.events_processed, "wall": wall}


def _run_stack(backend: str, layers: list) -> dict:
    """Full-stack run with a complete observable fingerprint."""
    from repro.bench.workloads import random_layered_dag
    from repro.config import scaled_platform
    from repro.runtime.context import ParsecContext

    graph = random_layered_dag(layers, num_nodes=4, seed=7)
    ctx = ParsecContext(
        scaled_platform(num_nodes=4, cores_per_node=4),
        backend=backend,
        seed=5,
        observability=True,
    )
    t0 = time.perf_counter()
    stats = ctx.run(graph, until=120.0)
    wall = time.perf_counter() - t0
    digest = hashlib.sha256()
    for ev in ctx.obs.memory.events:
        digest.update(
            repr((ev.time, ev.kind, ev.node, ev.key, ev.info)).encode()
        )
    return {
        "trace_sha256": digest.hexdigest(),
        "makespan": stats.makespan,
        "tasks": stats.tasks_executed,
        "events": stats.events_processed,
        "wire_bytes": stats.wire_bytes,
        "counters": dict(sorted(stats.obs_counters.items())),
        "wall": wall,
    }


def _run_partition(backend: str, partitions, scale: dict) -> dict:
    """One catalog-workload run, serial or partitioned, fingerprinted.

    The fingerprint hashes the full typed result — ``events_processed``
    included.  Serial and partitioned engines schedule the identical
    kernel event set now that wire ejection is deferred to end of epoch
    and replayed in ``(inject, src, seq)`` order in both.
    """
    import dataclasses

    from repro.api import Experiment

    t0 = time.perf_counter()
    result = Experiment(
        workload=scale["workload"], backend=backend, nodes=scale["nodes"],
        seed=3, partitions=partitions, **scale["params"],
    ).run()
    wall = time.perf_counter() - t0
    doc = dataclasses.asdict(result)
    events = doc.get("events_processed", 0)
    digest = hashlib.sha256(
        json.dumps(doc, sort_keys=True, default=repr).encode()
    ).hexdigest()
    return {
        "fingerprint": digest,
        "events": events,
        "wall": wall,
        # Sync-protocol telemetry (partitioned runs only) rides outside
        # the fingerprint: it describes the transport, not the simulation.
        "sync": getattr(result, "partition_sync", None),
    }


def _child_main(spec: dict) -> int:
    sys.path.insert(0, str(ROOT / "src"))
    if spec["workload"] == "micro":
        out = _run_micro(spec["events"])
    elif spec["workload"] == "partition":
        out = _run_partition(spec["backend"], spec["partitions"], spec["scale"])
    else:
        out = _run_stack(spec["backend"], spec["layers"])
    json.dump(out, sys.stdout)
    return 0


# ----------------------------------------------------------------------
# parent side: spawn per-core children, compare
# ----------------------------------------------------------------------

def _spawn(core: str, spec: dict, extra_env: dict | None = None) -> dict:
    env = dict(os.environ, REPRO_SIM_CORE=core, **(extra_env or {}))
    proc = subprocess.run(
        [sys.executable, __file__, "--child", json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child ({core}, {spec['workload']}) failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def _best_events_per_sec(core: str, spec: dict, reps: int) -> float:
    """Min-of-N walls: the least-noisy throughput estimate."""
    best_wall, events = min(
        ((r["wall"], r["events"]) for r in (_spawn(core, spec) for _ in range(reps))),
        key=lambda t: t[0],
    )
    return events / best_wall


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sizes, one rep (seconds of wall time)")
    ap.add_argument("--reps", type=int, default=3,
                    help="micro-benchmark repetitions per core (min-of-N)")
    ap.add_argument("--backend", choices=["mpi", "lci", "both"], default="both")
    ap.add_argument(
        "--partition-batch", action="store_true",
        help="A/B the batched sync-window protocol (window_batch=default) "
             "against the classic two-round-trip-per-window protocol "
             "(window_batch=1): fingerprints must match, walls and "
             "coordinator round-trips are reported; runs only this mode")
    ap.add_argument("--child", help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.child:
        return _child_main(json.loads(args.child))

    if args.smoke:
        micro_events, layers, reps = 100_000, [3, 4, 4, 3], 1
        scale = {"workload": "stencil", "nodes": 4,
                 "params": {"grid": 4, "steps": 4}}
    else:
        micro_events, layers, reps = 2_000_000, [8, 12, 12, 12, 8], args.reps
        scale = {"workload": "stencil", "nodes": 4,
                 "params": {"grid": 16, "steps": 16}}
    backends = ["mpi", "lci"] if args.backend == "both" else [args.backend]
    failed = False

    if args.partition_batch:
        # Dedicated A/B of the sync-window transport: classic
        # (window_batch=1, two coordinator round-trips per window) vs the
        # default batched protocol.  Same simulation, fewer round-trips.
        for backend in backends:
            base = {"workload": "partition", "backend": backend,
                    "scale": scale}
            serial = min(
                (_spawn("batched", dict(base, partitions=None))
                 for _ in range(reps)),
                key=lambda r: r["wall"],
            )
            for count in (2, 4):
                sides = {}
                for side, env in (
                    ("classic", {"REPRO_PARTITION_WINDOW_BATCH": "1"}),
                    ("batched", {}),
                ):
                    sides[side] = min(
                        (_spawn("batched", dict(base, partitions=count), env)
                         for _ in range(reps)),
                        key=lambda r: r["wall"],
                    )
                prints = {s: r["fingerprint"] for s, r in sides.items()}
                if len({serial["fingerprint"], *prints.values()}) != 1:
                    failed = True
                    print(
                        f"FAIL [{backend}] partitions={count}: sync "
                        f"protocols diverge:\n"
                        f"  serial  {serial['fingerprint']}\n"
                        f"  classic {prints['classic']}\n"
                        f"  batched {prints['batched']}"
                    )
                    continue
                rts = {s: r["sync"]["coordinator_roundtrips"]
                       for s, r in sides.items()}
                print(
                    f"batch  [{backend}] P={count} "
                    f"(windows={sides['batched']['sync']['sync_windows']:,}, "
                    f"fingerprint {serial['fingerprint'][:12]}..., "
                    f"best of {reps}): bit-identical; "
                    f"classic {rts['classic']:,} RTs "
                    f"{sides['classic']['wall']:.2f}s, "
                    f"batched {rts['batched']:,} RTs "
                    f"{sides['batched']['wall']:.2f}s "
                    f"-> {rts['classic'] / rts['batched']:.1f}x fewer "
                    f"round-trips, "
                    f"{sides['classic']['wall'] / sides['batched']['wall']:.2f}x "
                    f"wall"
                )
        if failed:
            return 1
        print("bench_ab OK: sync-window protocols bit-identical")
        return 0

    micro_spec = {"workload": "micro", "events": micro_events}
    rates = {c: _best_events_per_sec(c, micro_spec, reps) for c in CORES}
    print(
        f"micro  ({micro_events:,} events, best of {reps}): "
        f"legacy {rates['legacy']:,.0f} ev/s, "
        f"batched {rates['batched']:,.0f} ev/s "
        f"-> {rates['batched'] / rates['legacy']:.2f}x"
    )

    for backend in backends:
        spec = {"workload": "stack", "backend": backend, "layers": layers}
        results = {c: _spawn(c, spec) for c in CORES}
        walls = {c: r.pop("wall") for c, r in results.items()}
        if results["legacy"] != results["batched"]:
            failed = True
            print(f"FAIL [{backend}]: cores diverge:")
            for key in results["legacy"]:
                if results["legacy"][key] != results["batched"][key]:
                    print(
                        f"  {key}: legacy={results['legacy'][key]!r} "
                        f"batched={results['batched'][key]!r}"
                    )
            continue
        events = results["batched"]["events"]
        print(
            f"stack  [{backend}] ({events:,} events, trace "
            f"{results['batched']['trace_sha256'][:12]}...): bit-identical; "
            f"legacy {events / walls['legacy']:,.0f} ev/s, "
            f"batched {events / walls['batched']:,.0f} ev/s "
            f"-> {walls['legacy'] / walls['batched']:.2f}x"
        )

    for backend in backends:
        base = {"workload": "partition", "backend": backend, "scale": scale}
        runs = [_spawn("batched", dict(base, partitions=None))
                for _ in range(reps)]
        serial = min(runs, key=lambda r: r["wall"])
        line = (
            f"serial {serial['events'] / serial['wall']:,.0f} ev/s"
        )
        for count in (2, 4):
            runs = [_spawn("batched", dict(base, partitions=count))
                    for _ in range(reps)]
            part = min(runs, key=lambda r: r["wall"])
            if part["fingerprint"] != serial["fingerprint"]:
                failed = True
                print(
                    f"FAIL [{backend}] partitions={count}: result diverged "
                    f"from serial:\n"
                    f"  serial      {serial['fingerprint']}\n"
                    f"  partitioned {part['fingerprint']}"
                )
                continue
            line += f", P={count} {part['events'] / part['wall']:,.0f} ev/s"
        print(
            f"part   [{backend}] ({scale['workload']}, fingerprint "
            f"{serial['fingerprint'][:12]}..., best of {reps}): {line}"
        )

    if failed:
        return 1
    print("bench_ab OK: cores bit-identical on every workload")
    return 0


if __name__ == "__main__":
    sys.exit(main())
