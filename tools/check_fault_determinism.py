#!/usr/bin/env python3
"""Check: fault-injection runs are deterministic (same seed + same plan ⇒
bit-identical results).

Runs the same small workload twice under the same seeded fault plan and
diffs the final run statistics (makespan, task/event counts, wire bytes,
flow-latency sums) plus every obs counter, including the ``fault.*`` and
``rel.*`` instruments.  Any divergence means an injector or recovery path
consumed randomness outside the named RNG streams — exit 1.

Also asserts the NULL-engine invariant: a run with ``faults=None`` and a run
with a disabled plan produce identical fingerprints.

Replays the bundled explore schedule
(``tests/data/schedule_pingpong.json``) twice through the schedule
explorer's :class:`ReplayPolicy`: the recorded decision sequence must
drive the epoch-batched kernel to a violation-free run with a stable
digest — the cross-subsystem proof that ``SchedulePolicy`` still sees
the same runnable sets the schedule was recorded against.

Finally checks the partitioned PDES engine's bit-identity contract: a
4-node workload run serially and with ``partitions`` ∈ {1, 2, 4} must
produce identical results field for field — *including*
``events_processed``, since both engines now schedule the identical
kernel event set (wire ejections are deferred to end of epoch and
replayed in ``(inject, src, seq)`` order in either engine).  On the
LCI backend the sweep always includes the ``alltoall`` and
``taskbench`` collision workloads, which drive many same-timestamp
cross-partition sends into one NIC — the exact tie the deterministic
merge key exists to break.

Run as::

    python tools/check_fault_determinism.py [--backend mpi|lci|both]
        [--plan NAME] [--schedule PATH] [--partition-workload NAME]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import random_layered_dag  # noqa: E402
from repro.config import scaled_platform  # noqa: E402
from repro.faults.plans import fault_plan  # noqa: E402
from repro.runtime.context import ParsecContext  # noqa: E402


def fingerprint(backend: str, plan, seed: int = 3) -> dict:
    """Run the workload once; return every observable final statistic."""
    graph = random_layered_dag([4, 6, 6, 4], num_nodes=3, seed=11)
    ctx = ParsecContext(
        scaled_platform(num_nodes=3, cores_per_node=3),
        backend=backend,
        seed=seed,
        observability=True,
        faults=plan,
    )
    stats = ctx.run(graph, until=30.0)
    return {
        "makespan": stats.makespan,
        "tasks": stats.tasks_executed,
        "events": stats.events_processed,
        "wire_bytes": stats.wire_bytes,
        "flow_latency_sum": sum(stats.flow_latencies),
        "n_flow_latencies": len(stats.flow_latencies),
        "counters": dict(sorted(stats.obs_counters.items())),
    }


def diff(a: dict, b: dict) -> list[str]:
    problems = []
    for key in a:
        if a[key] != b[key]:
            problems.append(f"  {key}: {a[key]!r} != {b[key]!r}")
    return problems


def check_schedule_replay(path: Path) -> list[str]:
    """Replay a recorded explore schedule twice; return problems (if any)."""
    from repro.explore.explorer import replay_schedule

    problems = []
    _, first = replay_schedule(path)
    _, second = replay_schedule(path)
    if first.get("violations"):
        problems.append(f"  replay violated invariants: {first['violations']!r}")
    if first.get("digest") is None:
        problems.append("  replay produced no digest")
    if first != second:
        for key in first:
            if first[key] != second.get(key):
                problems.append(
                    f"  {key}: {first[key]!r} != {second.get(key)!r}"
                )
    return problems


PARTITION_COUNTS = (1, 2, 4)

# Workloads whose communication patterns pile many same-timestamp
# cross-partition sends onto a single destination NIC — regression
# guards for the deterministic (inject, src, seq) ejection order.
# Always swept on the LCI backend, whose hardware-queue model is the
# most tie-sensitive.
COLLISION_WORKLOADS = ("alltoall", "taskbench")


def partition_fingerprint(backend: str, workload: str, partitions) -> dict:
    """Run a 4-node catalog workload; return its full comparable result.

    Every field is compared, ``events_processed`` included: serial and
    partitioned engines schedule the identical kernel event set now
    that wire ejection is deferred to end of epoch in both.
    """
    import dataclasses

    from repro.api import Experiment

    result = Experiment(
        workload=workload, backend=backend, nodes=4, seed=3,
        partitions=partitions,
    ).run()
    return dataclasses.asdict(result)


def check_partitions(backend: str, workload: str) -> list:
    """Serial vs partitions ∈ {1,2,4} bit-identity; return problems."""
    problems = []
    serial = partition_fingerprint(backend, workload, None)
    for count in PARTITION_COUNTS:
        partitioned = partition_fingerprint(backend, workload, count)
        for line in diff(serial, partitioned):
            problems.append(f"  [partitions={count}]{line}")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", choices=["mpi", "lci", "both"], default="both")
    ap.add_argument("--plan", default="chaos")
    ap.add_argument("--schedule", default=str(
        Path(__file__).resolve().parent.parent
        / "tests" / "data" / "schedule_pingpong.json"))
    ap.add_argument(
        "--partition-workload", action="append", default=None,
        metavar="NAME",
        help="4-node catalog workload(s) for the partitioned "
             "bit-identity check (repeatable; default: stencil, plus "
             "the NIC-collision workloads "
             f"{'/'.join(COLLISION_WORKLOADS)} on the lci backend)")
    args = ap.parse_args(argv)
    backends = ["mpi", "lci"] if args.backend == "both" else [args.backend]
    failed = False
    for backend in backends:
        plan = fault_plan(args.plan)
        first = fingerprint(backend, plan)
        second = fingerprint(backend, plan)
        problems = diff(first, second)
        if problems:
            failed = True
            print(f"FAIL [{backend}] plan={args.plan!r}: replay diverged:")
            print("\n".join(problems))
        else:
            inj = sum(
                v for k, v in first["counters"].items()
                if k.startswith("fault.injected.")
            )
            print(
                f"ok [{backend}] plan={args.plan!r}: two runs bit-identical "
                f"({inj} faults injected, makespan {first['makespan']:.6g}s)"
            )
        bare = fingerprint(backend, None)
        import dataclasses

        disabled = fingerprint(backend, dataclasses.replace(plan, enabled=False))
        problems = diff(bare, disabled)
        if problems:
            failed = True
            print(f"FAIL [{backend}]: disabled plan != no plan:")
            print("\n".join(problems))
        else:
            print(f"ok [{backend}]: disabled plan is bit-identical to no plan")

        workloads = list(args.partition_workload or ["stencil"])
        if backend == "lci":
            workloads += [
                wl for wl in COLLISION_WORKLOADS if wl not in workloads
            ]
        for workload in workloads:
            problems = check_partitions(backend, workload)
            if problems:
                failed = True
                print(
                    f"FAIL [{backend}] workload={workload!r}: "
                    f"partitioned run diverged from serial:"
                )
                print("\n".join(problems))
            else:
                counts = ", ".join(str(c) for c in PARTITION_COUNTS)
                print(
                    f"ok [{backend}] workload={workload!r}: "
                    f"partitions {{{counts}}} bit-identical to serial"
                )

    problems = check_schedule_replay(Path(args.schedule))
    if problems:
        failed = True
        print(f"FAIL schedule replay ({args.schedule}):")
        print("\n".join(problems))
    else:
        print(
            f"ok schedule replay: {Path(args.schedule).name} drives a "
            "violation-free, digest-stable run"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
