#!/usr/bin/env python3
"""Check: the schedule-space explorer actually catches protocol bugs.

A race detector that never fires is indistinguishable from one that does
not work.  This checker first asserts the clean baseline (every explored
schedule of the default ping-pong scenario satisfies every invariant),
then plants two known-bad protocol variants and asserts the explorer
catches each within a bounded schedule budget:

1. **dup-suppression skipped** — :class:`repro.faults.transport.SeqTracker`
   is patched to accept every sequence number, so under the ``explore-dup``
   fault plan a duplicated wire message is delivered twice and the LCI
   rendezvous completes the same RDMA transfer twice (a protocol
   violation: a progress thread dies on the double completion).
2. **deferred-GET requeued twice** — :class:`repro.sim.primitives.
   PriorityStore` is patched to silently requeue each drained entry once,
   so GET DATA requests are served twice and the run ends with leaked
   communication slots (a quiescence violation).

Each caught failure is shrunk, written to a ``schedule.json``, and
replayed through :func:`repro.explore.replay_schedule` with the mutant
still applied — the replay must reproduce the violation.  The explorer
runs with ``jobs=1`` throughout: the mutation is an in-process monkeypatch
and would be invisible to pool workers.

Run as::

    python tools/check_explorer_finds_bugs.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.explore import (  # noqa: E402
    ExploreConfig,
    default_scenario,
    replay_schedule,
    run_explore,
    write_schedule,
)

#: Schedule budget within which each mutant must be caught.
MAX_SCHEDULES = 20

CONFIG = ExploreConfig(max_schedules=MAX_SCHEDULES, budget=24, jobs=1)


def mutant_skip_dup_suppression():
    """Plant bug 1: receiver-side dedup accepts every sequence number.

    Returns an undo callable.
    """
    from repro.faults.transport import SeqTracker

    original = SeqTracker.accept

    def accept_everything(self, seq):
        original(self, seq)  # keep the bookkeeping, ignore its verdict
        return True

    SeqTracker.accept = accept_everything
    return lambda: setattr(SeqTracker, "accept", original)


def mutant_requeue_deferred_get():
    """Plant bug 2: every drained priority-store entry is served twice.

    Returns an undo callable.
    """
    from repro.sim.primitives import PriorityStore

    original = PriorityStore.try_get
    replayed: set[int] = set()

    def try_get_twice(self):
        ok, payload = original(self)
        if ok and isinstance(payload, tuple) and len(payload) == 2 \
                and id(payload) not in replayed:
            replayed.add(id(payload))
            self.try_put((0.0, payload))
        return ok, payload

    PriorityStore.try_get = try_get_twice
    return lambda: (setattr(PriorityStore, "try_get", original),
                    replayed.clear())


def check_baseline() -> bool:
    """The unmutated scenario must pass every invariant on every schedule."""
    outcome = run_explore(default_scenario("pingpong"), CONFIG)
    if not outcome.ok:
        print("FAIL baseline: clean scenario produced findings:")
        print(outcome.summary())
        return False
    print(f"ok baseline: {outcome.schedules_run} schedules clean "
          f"({outcome.total_sites} choice points)")
    return True


def check_mutant(name: str, plant, scenario, expect_kinds) -> bool:
    """Plant one bug; the explorer must catch and replay it."""
    undo = plant()
    try:
        outcome = run_explore(scenario, CONFIG)
        if outcome.ok:
            print(f"FAIL {name}: explorer found nothing within "
                  f"{MAX_SCHEDULES} schedules")
            return False
        finding = outcome.findings[0]
        kinds = {kind for kind, _detail in finding.violations}
        if not kinds & set(expect_kinds):
            print(f"FAIL {name}: expected a violation in {expect_kinds}, "
                  f"got {sorted(kinds)}")
            return False
        decisions = (outcome.shrunk if outcome.shrunk is not None
                     else list(finding.decisions))
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "schedule.json"
            write_schedule(path, scenario, decisions, CONFIG.budget,
                           violations=finding.violations)
            _scenario, record = replay_schedule(path)
        if not record["violations"]:
            print(f"FAIL {name}: shrunk schedule did not replay the failure")
            return False
        print(f"ok {name}: caught at run {finding.schedule_index} "
              f"({sorted(kinds)}), shrunk to {len(decisions)} decision(s), "
              f"replay reproduces")
        return True
    finally:
        undo()


def main() -> int:
    ok = check_baseline()
    ok &= check_mutant(
        "mutant[dup-suppression skipped]",
        mutant_skip_dup_suppression,
        default_scenario("pingpong", fault_plan="explore-dup"),
        expect_kinds=("protocol", "deadlock"),
    )
    ok &= check_mutant(
        "mutant[deferred GET requeued]",
        mutant_requeue_deferred_get,
        default_scenario("pingpong"),
        expect_kinds=("quiescence",),
    )
    print("explorer mutation check:", "caught both" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
