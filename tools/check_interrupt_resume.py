#!/usr/bin/env python3
"""Check: an interrupted, chaos-ridden sweep resumes to a bit-identical
result.

End-to-end proof of the supervised execution layer
(:mod:`repro.supervise`, ``docs/robustness.md``), driving the real CLI in
subprocesses:

1. **Baseline** — a serial, cache-less sweep; its records are ground truth.
2. **worker_kill** — the same grid in parallel with a chaos-armed worker
   that SIGKILLs itself mid-point: the supervisor must respawn it, retry
   the point, and produce byte-identical records (canonical JSON).
3. **Interrupt + resume** — a journaled parallel sweep with a chaos-armed
   *hanging* worker is SIGTERMed partway (after some outcomes are
   journaled but before completion — the hang pins the sweep open, so
   there is no race).  The driver must exit 130, flush the journal with an
   ``interrupted`` entry, and print a resume hint; ``--resume`` must then
   complete only the missing points and write records byte-identical to
   the baseline.
4. **worker_hang** — the hang chaos again, this time with a short
   ``--heartbeat-timeout``: the supervisor must detect the silent worker,
   terminate it, retry, and finish with identical records.

Any divergence, wrong exit code, or missing journal entry — exit 1.

Run as::

    python tools/check_interrupt_resume.py [--keep]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.supervise.journal import read_journal  # noqa: E402

#: A tiny grid (4 points, ~0.5 s serial) shared by every scenario.
GRID = ["pingpong", "--fragments", "64K", "128K", "--total", "256K",
        "--no-cache"]


def sweep_cmd(*extra: str) -> list:
    return [sys.executable, "-m", "repro", "sweep", *GRID, *extra]


def run(cmd: list, env: dict, **kw) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, env=env, capture_output=True, text=True, **kw)


def records_of(path: Path) -> str:
    """The canonical-JSON record set of a saved sweep outcome."""
    doc = json.loads(path.read_text())
    return json.dumps({"keys": doc["keys"], "records": doc["records"]},
                      sort_keys=True)


def check_baseline(tmp: Path, env: dict) -> "str | None":
    out = tmp / "baseline.json"
    proc = run(sweep_cmd("--jobs", "1", "--out", str(out)), env)
    if proc.returncode != 0:
        print(f"FAIL baseline: exit {proc.returncode}\n{proc.stderr}")
        return None
    print("ok baseline: serial sweep complete")
    return records_of(out)


def check_worker_kill(tmp: Path, env: dict, baseline: str) -> bool:
    out = tmp / "killed.json"
    env = dict(env, REPRO_HARNESS_CHAOS=f"worker_kill@1:{tmp}/kill-markers")
    proc = run(sweep_cmd("--jobs", "2", "--out", str(out)), env)
    if proc.returncode != 0:
        print(f"FAIL worker_kill: exit {proc.returncode}\n{proc.stderr}")
        return False
    if records_of(out) != baseline:
        print("FAIL worker_kill: records diverged from baseline")
        return False
    if not (tmp / "kill-markers").exists():
        print("FAIL worker_kill: chaos never fired (marker dir missing)")
        return False
    print("ok worker_kill: SIGKILLed worker respawned, records bit-identical")
    return True


def check_interrupt_resume(tmp: Path, env: dict, baseline: str) -> bool:
    journal = tmp / "sweep.journal"
    out = tmp / "resumed.json"
    # The chaos worker hangs on the *last* point with a generous heartbeat
    # timeout, pinning the sweep open: by the time earlier outcomes are
    # journaled the driver is guaranteed to still be alive to SIGTERM.
    env_hang = dict(env, REPRO_HARNESS_CHAOS=f"worker_hang@3:{tmp}/markers")
    proc = subprocess.Popen(
        sweep_cmd("--jobs", "2", "--journal", str(journal)),
        env=env_hang, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if len(read_journal(journal).completed) >= 2:
            break
        if proc.poll() is not None:
            print(f"FAIL interrupt: sweep exited early ({proc.returncode}) "
                  f"before SIGTERM\n{proc.communicate()[1]}")
            return False
        time.sleep(0.05)
    else:
        proc.kill()
        print("FAIL interrupt: no journaled outcomes within 60s")
        return False
    proc.send_signal(signal.SIGTERM)
    try:
        _stdout, stderr = proc.communicate(timeout=30.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        print("FAIL interrupt: driver ignored SIGTERM for 30s")
        return False
    ok = True
    if proc.returncode != 130:
        print(f"FAIL interrupt: exit {proc.returncode} (wanted 130)")
        ok = False
    state = read_journal(journal)
    if not state.interrupted:
        print("FAIL interrupt: journal has no 'interrupted' flush entry")
        ok = False
    if not state.completed:
        print("FAIL interrupt: journal recorded no completed points")
        ok = False
    if "--resume" not in stderr:
        print(f"FAIL interrupt: no resume hint on stderr:\n{stderr}")
        ok = False
    if not ok:
        return False
    done = len(state.completed)
    proc = run(
        sweep_cmd("--jobs", "2", "--journal", str(journal), "--resume",
                  "--out", str(out)),
        env,  # chaos disarmed: the hung point must simply run
    )
    if proc.returncode != 0:
        print(f"FAIL resume: exit {proc.returncode}\n{proc.stderr}")
        return False
    if records_of(out) != baseline:
        print("FAIL resume: records diverged from baseline")
        return False
    print(f"ok interrupt+resume: SIGTERM after {done} journaled points, "
          "resume completed the rest, records bit-identical")
    return True


def check_worker_hang(tmp: Path, env: dict, baseline: str) -> bool:
    out = tmp / "hung.json"
    env = dict(env, REPRO_HARNESS_CHAOS=f"worker_hang@2:{tmp}/hang-markers")
    proc = run(
        sweep_cmd("--jobs", "2", "--heartbeat-timeout", "1", "--out",
                  str(out)),
        env,
    )
    if proc.returncode != 0:
        print(f"FAIL worker_hang: exit {proc.returncode}\n{proc.stderr}")
        return False
    if records_of(out) != baseline:
        print("FAIL worker_hang: records diverged from baseline")
        return False
    print("ok worker_hang: silent worker terminated and retried, "
          "records bit-identical")
    return True


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--keep", action="store_true",
                    help="keep the scratch directory for inspection")
    args = ap.parse_args(argv)
    env = {k: v for k, v in os.environ.items() if k != "REPRO_HARNESS_CHAOS"}
    env["PYTHONPATH"] = str(ROOT / "src")
    tmp = Path(tempfile.mkdtemp(prefix="repro-interrupt-"))
    try:
        baseline = check_baseline(tmp, env)
        if baseline is None:
            return 1
        failed = False
        for check in (check_worker_kill, check_interrupt_resume,
                      check_worker_hang):
            if not check(tmp, env, baseline):
                failed = True
        return 1 if failed else 0
    finally:
        if args.keep:
            print(f"scratch kept at {tmp}")
        else:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
