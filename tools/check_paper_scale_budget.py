#!/usr/bin/env python3
"""Check: the paper-scale configuration (N = 360,000) stays tractable.

Builds the full NT=150 two-flow TLR Cholesky task graph (~575k tasks,
~585k flows — the ``REPRO_PAPER_SCALE=1`` Fig. 4 point at tile 2400) and
asserts the budgets the array-backed :class:`TaskGraph` was introduced to
meet:

- graph build + freeze + validate completes in under ``--build-budget``
  seconds (default 60);
- peak RSS stays under ``--rss-budget`` GiB (default 4);
- the run-guard deadline machinery (``--deadline`` on the ``hicma`` verb,
  :class:`repro.supervise.guards.RunGuards`) aborts a guarded run with a
  structured :class:`~repro.errors.RunBudgetExceeded` carrying a
  diagnostic snapshot and salvaged partial stats — the smoke test for
  supervising a real paper-scale run (skip with ``--no-deadline-smoke``).

With ``--partitions P`` (alongside ``--full``) the same point is also
simulated under the partitioned PDES engine and gated per worker: the
``--events-floor`` then applies to events/second *per partition worker*,
the ``--wall-budget`` ceiling covers the partitioned wall clock, and the
peak-RSS ceiling includes the worker children.  The measured wall-clock
speedup over the serial run is recorded next to the ``--speedup-target``
(the paper-point goal on a multi-core host; on a single-core host the
measured value is honestly below 1 — the gate only *fails* when
``--enforce-speedup`` is passed, so CI boxes without real parallelism
record the number without lying about it).  The partitioned record also
captures the sync-protocol telemetry — ``sync_windows``,
``coordinator_roundtrips``, and the ``window_batch`` in effect (override
with ``--window-batch``; 1 reproduces the classic
two-round-trip-per-window protocol) — and the gate requires at least one
coordinator progress beat.

Results land in ``BENCH_scale.json`` next to the repo root (build seconds,
peak RSS, tasks/flows, and — with ``--full`` — the end-to-end simulated
run's wall time, kernel events/second, and makespan).  Records for other
node counts already present in the output file are preserved under
``"points"``, so the checked-in file accumulates e.g. the 16-node and
32-node paper points across invocations.  The default mode checks
construction only, so it is cheap enough for the test suite; the
``--full`` run is the acceptance gate behind the EXPERIMENTS.md paper-scale
runbook.

Run as::

    python tools/check_paper_scale_budget.py [--full] [--nodes 16]
        [--tile 2400] [--build-budget 60] [--rss-budget 4.0]
        [--partitions 4] [--window-batch K] [--wall-budget 1800]
        [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.hicma.dag import build_tlr_cholesky_graph, expected_task_count  # noqa: E402
from repro.obs.progress import peak_rss_bytes  # noqa: E402

PAPER_N = 360_000


def build_check(nodes: int, tile: int) -> dict:
    """Build + freeze + validate the paper-scale graph; return metrics."""
    nt = PAPER_N // tile
    t0 = time.perf_counter()
    graph = build_tlr_cholesky_graph(nt, tile, num_nodes=nodes)
    t_build = time.perf_counter() - t0
    t1 = time.perf_counter()
    graph.freeze()
    t_freeze = time.perf_counter() - t1
    t2 = time.perf_counter()
    graph.validate(num_nodes=nodes)
    t_validate = time.perf_counter() - t2
    assert graph.num_tasks == expected_task_count(nt)
    return {
        "matrix_size": PAPER_N,
        "tile_size": tile,
        "nt": nt,
        "num_nodes": nodes,
        "tasks": graph.num_tasks,
        "flows": graph.num_flows,
        "build_seconds": round(t_build, 3),
        "freeze_seconds": round(t_freeze, 3),
        "validate_seconds": round(t_validate, 3),
        "total_build_seconds": round(t_build + t_freeze + t_validate, 3),
        "peak_rss_gib": round(peak_rss_bytes() / 2**30, 3),
    }


def deadline_smoke() -> "tuple[dict, list]":
    """Prove the run guards abort structurally (small run, tight budgets).

    Uses a deliberately small Cholesky so the smoke stays in the test
    suite's budget; what it exercises — tick-hook guards, structured
    abort, snapshot, partial-stats salvage — is scale-independent.
    """
    from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
    from repro.errors import RunBudgetExceeded
    from repro.supervise import RunGuards

    cfg = HicmaConfig(matrix_size=2048, tile_size=256, num_nodes=4)
    problems = []
    doc = {}
    try:
        run_hicma_benchmark(
            "lci", cfg,
            guards=RunGuards(deadline=3600.0, max_events=1000, check_every=256),
        )
        problems.append("guarded run finished: max_events guard never fired")
    except RunBudgetExceeded as exc:
        snap = exc.snapshot
        if not snap or "reason" not in snap or "tasks_done" not in snap:
            problems.append(f"abort snapshot incomplete: {sorted(snap)!r}")
        if exc.partial is None or exc.partial.tasks_executed <= 0:
            problems.append("abort carried no salvaged partial stats")
        else:
            doc = {
                "reason": snap.get("reason"),
                "partial_tasks": exc.partial.tasks_executed,
                "events_processed": snap.get("events_processed"),
            }
    return doc, problems


def _peak_rss_with_children() -> int:
    """Peak RSS including reaped child processes (partition workers)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return peak_rss_bytes()
    child = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if sys.platform != "darwin":
        child *= 1024
    return max(peak_rss_bytes(), child)


def full_run(nodes: int, tile: int, partitions=None, window_batch=None) -> dict:
    """Simulate the paper-scale point end to end; return run metrics.

    With ``partitions`` set the run executes under the partitioned PDES
    engine (bit-identical results), the peak-RSS figure includes the
    worker child processes, and the record carries the sync-protocol
    telemetry (``sync_windows``, ``coordinator_roundtrips``,
    ``window_batch``).  ``window_batch`` overrides the batched sync
    protocol's default batch length (1 = classic per-window protocol).
    """
    from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
    from repro.config import PartitionConfig, expanse_platform
    from repro.obs.progress import ProgressReporter

    cfg = HicmaConfig(matrix_size=PAPER_N, tile_size=tile, num_nodes=nodes)
    pcfg = partitions
    if partitions and window_batch is not None:
        pcfg = PartitionConfig(
            partitions=int(partitions), window_batch=int(window_batch)
        )
    reporter = ProgressReporter(interval=10.0, stream=sys.stderr)
    t0 = time.perf_counter()
    result = run_hicma_benchmark(
        "lci", cfg, expanse_platform(num_nodes=nodes), progress=reporter,
        partitions=pcfg,
    )
    wall = time.perf_counter() - t0
    rss = _peak_rss_with_children() if partitions else peak_rss_bytes()
    doc = {
        "run_wall_seconds": round(wall, 1),
        "makespan_seconds": result.time_to_solution,
        "tasks_executed": result.tasks,
        "mean_flow_latency": result.flow_latency.get("mean", 0.0),
        "activates_sent": result.activates_sent,
        "wire_bytes": result.wire_bytes,
        "events_total": result.events_processed,
        "events_per_second": round(result.events_processed / wall, 1),
        "peak_rss_gib": round(rss / 2**30, 3),
        "progress_beats": reporter.beats,
    }
    if partitions:
        doc["partitions"] = int(partitions)
        sync = getattr(result, "partition_sync", None)
        if sync is not None:
            doc["window_batch"] = sync["window_batch"]
            doc["sync_windows"] = sync["sync_windows"]
            doc["coordinator_roundtrips"] = sync["coordinator_roundtrips"]
    return doc


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--full", action="store_true",
                    help="also simulate the run end to end (minutes)")
    ap.add_argument("--nodes", type=int, default=16)
    ap.add_argument("--tile", type=int, default=2400)
    ap.add_argument("--build-budget", type=float, default=60.0,
                    help="max seconds for build+freeze+validate")
    ap.add_argument("--rss-budget", type=float, default=4.0,
                    help="max peak RSS in GiB")
    ap.add_argument("--events-floor", type=float, default=None,
                    help="min kernel events/second for the --full run, "
                         "per worker when partitioned (default: 50,000 "
                         "serial; 1,000/worker partitioned — the "
                         "conservative-sync engine is window-bound, not "
                         "event-bound)")
    ap.add_argument("--partitions", type=int, default=None, metavar="P",
                    help="also run the --full point under the partitioned "
                         "PDES engine with P workers and gate it")
    ap.add_argument("--window-batch", type=int, default=None, metavar="K",
                    help="sync windows per coordinator round-trip for the "
                         "partitioned run (default: PartitionConfig's "
                         "batched protocol; 1 = classic per-window "
                         "protocol)")
    ap.add_argument("--wall-budget", type=float, default=1800.0,
                    help="max wall-clock seconds for a --full run")
    ap.add_argument("--speedup-target", type=float, default=1.5,
                    help="recorded partitioned-vs-serial speedup goal")
    ap.add_argument("--enforce-speedup", action="store_true",
                    help="fail when the measured speedup misses the target "
                         "(only meaningful on a multi-core host)")
    ap.add_argument("--no-deadline-smoke", action="store_true",
                    help="skip the run-guard structured-abort smoke test")
    ap.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_scale.json"))
    args = ap.parse_args(argv)

    doc = build_check(args.nodes, args.tile)
    problems = []
    if doc["total_build_seconds"] > args.build_budget:
        problems.append(
            f"graph build took {doc['total_build_seconds']:.1f}s "
            f"(> {args.build_budget:.0f}s budget)"
        )
    if doc["peak_rss_gib"] > args.rss_budget:
        problems.append(
            f"peak RSS {doc['peak_rss_gib']:.2f} GiB "
            f"(> {args.rss_budget:.1f} GiB budget)"
        )
    print(
        f"paper-scale build: NT={doc['nt']} -> {doc['tasks']:,} tasks, "
        f"{doc['flows']:,} flows in {doc['total_build_seconds']:.1f}s "
        f"(build {doc['build_seconds']:.1f} + freeze {doc['freeze_seconds']:.1f} "
        f"+ validate {doc['validate_seconds']:.1f}), "
        f"peak RSS {doc['peak_rss_gib']:.2f} GiB"
    )

    if not args.no_deadline_smoke:
        smoke, smoke_problems = deadline_smoke()
        problems.extend(smoke_problems)
        if smoke:
            doc["deadline_smoke"] = smoke
            print(
                f"deadline smoke: guarded run aborted structurally "
                f"({smoke['reason']}; {smoke['partial_tasks']} tasks salvaged)"
            )

    if args.full:
        run = full_run(args.nodes, args.tile)
        doc["full_run"] = run
        if run["peak_rss_gib"] > args.rss_budget:
            problems.append(
                f"full-run peak RSS {run['peak_rss_gib']:.2f} GiB "
                f"(> {args.rss_budget:.1f} GiB budget)"
            )
        serial_floor = (
            args.events_floor if args.events_floor is not None else 50_000.0
        )
        if run["events_per_second"] < serial_floor:
            problems.append(
                f"kernel throughput {run['events_per_second']:,.0f} events/s "
                f"(< {serial_floor:,.0f} floor)"
            )
        if run["run_wall_seconds"] > args.wall_budget:
            problems.append(
                f"full-run wall {run['run_wall_seconds']:.0f}s "
                f"(> {args.wall_budget:.0f}s budget)"
            )
        print(
            f"paper-scale run: {run['tasks_executed']:,} tasks, "
            f"makespan {run['makespan_seconds']:.1f}s simulated in "
            f"{run['run_wall_seconds']:.0f}s wall "
            f"({run['events_total']:,} events, "
            f"{run['events_per_second']:,.0f} ev/s), peak RSS "
            f"{run['peak_rss_gib']:.2f} GiB, {run['progress_beats']} progress beats"
        )

        if args.partitions:
            import os

            prun = full_run(
                args.nodes, args.tile, partitions=args.partitions,
                window_batch=args.window_batch,
            )
            speedup = run["run_wall_seconds"] / prun["run_wall_seconds"]
            prun["speedup_vs_serial"] = round(speedup, 3)
            prun["speedup_target"] = args.speedup_target
            prun["host_cpus"] = os.cpu_count()
            doc["partitioned_run"] = prun
            if prun["makespan_seconds"] != run["makespan_seconds"]:
                problems.append(
                    f"partitioned makespan {prun['makespan_seconds']!r} != "
                    f"serial {run['makespan_seconds']!r} (bit-identity broken)"
                )
            if prun["progress_beats"] < 1:
                problems.append(
                    "partitioned run recorded 0 progress beats (the "
                    "coordinator reporter must emit at least the "
                    "end-of-run beat)"
                )
            if prun["peak_rss_gib"] > args.rss_budget:
                problems.append(
                    f"partitioned peak RSS {prun['peak_rss_gib']:.2f} GiB "
                    f"(> {args.rss_budget:.1f} GiB budget)"
                )
            if prun["run_wall_seconds"] > args.wall_budget:
                problems.append(
                    f"partitioned wall {prun['run_wall_seconds']:.0f}s "
                    f"(> {args.wall_budget:.0f}s budget)"
                )
            per_worker = prun["events_per_second"] / args.partitions
            worker_floor = (
                args.events_floor if args.events_floor is not None
                else 1_000.0
            )
            if per_worker < worker_floor:
                problems.append(
                    f"partitioned throughput {per_worker:,.0f} events/s "
                    f"per worker (< {worker_floor:,.0f} floor)"
                )
            if args.enforce_speedup and speedup < args.speedup_target:
                problems.append(
                    f"partitioned speedup {speedup:.2f}x "
                    f"(< {args.speedup_target:.2f}x target)"
                )
            print(
                f"partitioned run (P={args.partitions}, "
                f"window_batch={prun.get('window_batch', '?')}): makespan "
                f"{prun['makespan_seconds']:.1f}s (bit-identical) in "
                f"{prun['run_wall_seconds']:.0f}s wall "
                f"({per_worker:,.0f} ev/s per worker, "
                f"{prun.get('sync_windows', 0):,} windows over "
                f"{prun.get('coordinator_roundtrips', 0):,} coordinator "
                f"round-trips), peak RSS "
                f"{prun['peak_rss_gib']:.2f} GiB -> speedup "
                f"{speedup:.2f}x vs serial (target "
                f"{args.speedup_target:.1f}x, {prun['host_cpus']} host cpus)"
            )

    # Accumulate per-node-count records: keep every other node count's
    # entry from an existing output file so the checked-in document can
    # hold the 16- and 32-node paper points side by side.
    points = {}
    try:
        with open(args.out) as fp:
            points = json.load(fp).get("points", {})
    except (OSError, ValueError):
        pass
    points[str(args.nodes)] = {
        k: v for k, v in doc.items() if k != "deadline_smoke"
    }
    doc["points"] = points

    with open(args.out, "w") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote {args.out}")

    if problems:
        for p in problems:
            print(f"BUDGET EXCEEDED: {p}")
        return 1
    print("paper-scale budgets OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
