#!/usr/bin/env python
"""Verify that the documentation still matches the tree.

Three families of drift are caught, all statically (no imports, no
simulation):

1. **Markdown links** — every relative ``[text](target)`` in the checked
   pages must point at a file that exists (resolved against the page's own
   directory; ``http(s)``/``mailto`` and pure ``#anchor`` links are
   skipped).
2. **Code references** — every backticked ``path/to/file.py`` must exist,
   and a ``path/to/file.py:symbol`` form must name a function or class
   actually defined in that file (checked with ``ast``, dotted names
   resolve methods).
3. **CLI verbs** — every ``python -m repro <verb>`` mentioned in the docs
   must be a real subcommand of :func:`repro.cli.build_parser`, and every
   real subcommand must be mentioned somewhere in the checked pages, so
   new verbs cannot ship undocumented.
4. **CLI flags** — every ``--flag`` on a ``python -m repro <verb> ...``
   command line in the docs must be a flag that verb actually defines
   (per-verb ``add_argument`` calls plus the ``_common_flags`` parents,
   read from the AST), and every flag in ``REQUIRED_DOCUMENTED_FLAGS``
   must be mentioned in some checked page — so load-bearing flags (the
   supervision surface: ``--journal``, ``--resume``, ``--deadline``, ...)
   cannot ship undocumented.  The ``run`` verb generates one flag per
   registered workload parameter at runtime, so its flag set is
   reconstructed statically from the ``param_docs`` literals in
   ``src/repro/workloads/*.py``.
5. **Scenario catalog** — the workload names registered in
   ``src/repro/workloads/*.py`` (``WorkloadSpec(name="...")`` literals)
   and the ``## `name``` sections of ``docs/workloads.md`` must match
   exactly in both directions, and every ``python -m repro run <name>``
   command line in the docs must name a registered workload — so a new
   workload cannot ship without a catalog entry and the catalog cannot
   describe a workload that no longer exists.

Usage:  python tools/check_docs.py    (exit 0 = clean, 1 = drift found)
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Pages whose links/references are verified.
PAGES = ["README.md", "EXPERIMENTS.md", "DESIGN.md", *sorted(
    str(p.relative_to(ROOT)) for p in (ROOT / "docs").glob("*.md")
)]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODEREF = re.compile(r"`([A-Za-z0-9_/.-]+\.py)(?::([A-Za-z0-9_.]+))?`")
_VERB = re.compile(r"python -m repro ([a-z][a-z0-9-]*)")
_FLAG = re.compile(r"--[a-z][a-z0-9-]*")
_RUN_WORKLOAD = re.compile(r"python -m repro run ([A-Za-z0-9_-]+)")
_CATALOG_HEADING = re.compile(r"^## `([A-Za-z0-9_]+)`$", re.M)

#: The generated scenario catalog (checked against the registry sources).
WORKLOADS_DOC = "docs/workloads.md"
WORKLOADS_SRC = ROOT / "src" / "repro" / "workloads"

#: Flags that must be documented somewhere in the checked pages — the
#: supervised-execution surface (docs/robustness.md); a rename or removal
#: here without a doc update is drift.
REQUIRED_DOCUMENTED_FLAGS = {
    "sweep": ("--journal", "--resume", "--out", "--heartbeat-timeout"),
    "hicma": ("--deadline", "--max-events"),
    # The partitioned-PDES engine selector (docs/performance.md runbook).
    "run": ("--partitions",),
}


def check_links(page: pathlib.Path, text: str) -> list[str]:
    """Relative markdown link targets must exist on disk."""
    errors = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (page.parent / path).exists():
            errors.append(f"{page.relative_to(ROOT)}: broken link -> {target}")
    return errors


def _defined_symbols(py: pathlib.Path) -> set[str]:
    """Top-level functions/classes/assignments plus ``Class.method`` names."""
    tree = ast.parse(py.read_text())
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(f"{node.name}.{item.name}")
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _resolve_code_ref(rel: str) -> "pathlib.Path | None":
    """Find the file a doc reference names.

    Repo-relative paths (``tools/gen_api_docs.py``) resolve directly;
    package-relative fragments (``repro/config.py`` in DESIGN.md's layout
    tree, or a bare ``core.py`` under its package heading) resolve against
    ``src/`` and then by unique suffix match anywhere in the tree.
    """
    direct = ROOT / rel
    if direct.exists():
        return direct
    under_src = ROOT / "src" / rel
    if under_src.exists():
        return under_src
    hits = [
        p for p in ROOT.rglob(rel.rsplit("/", 1)[-1])
        if str(p).endswith("/" + rel) and ".git" not in p.parts
    ]
    return hits[0] if len(hits) == 1 else None


def check_code_refs(page: pathlib.Path, text: str) -> list[str]:
    """Backticked ``file.py`` / ``file.py:symbol`` references must resolve."""
    errors = []
    for match in _CODEREF.finditer(text):
        rel, symbol = match.group(1), match.group(2)
        py = _resolve_code_ref(rel)
        if py is None:
            errors.append(f"{page.relative_to(ROOT)}: missing file -> {rel}")
            continue
        if symbol and symbol not in _defined_symbols(py):
            errors.append(
                f"{page.relative_to(ROOT)}: {rel} does not define {symbol!r}"
            )
    return errors


def cli_verbs() -> set[str]:
    """The subcommands of ``python -m repro``, read from the AST of
    ``src/repro/cli.py`` (``add_parser`` first arguments)."""
    tree = ast.parse((ROOT / "src" / "repro" / "cli.py").read_text())
    verbs = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_parser"
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            verbs.add(node.args[0].value)
    return verbs


#: ``_common_flags`` keyword -> the flags its parent parser contributes.
_COMMON_PARENT_FLAGS = {
    "backend": ("--backend",),
    "seed": ("--seed",),
    "nodes": ("--nodes", "--num-nodes"),
    "jobs": ("--jobs",),
    "partitions": ("--partitions",),
}


def cli_verb_flags() -> dict:
    """Verb -> the ``--flags`` it defines, from the AST of ``cli.py``.

    Tracks ``<var> = sub.add_parser("<verb>", parents=[_common_flags(...)])``
    assignments, the shared flags implied by the non-``None``
    ``_common_flags`` keywords, and every later ``<var>.add_argument``.
    """
    tree = ast.parse((ROOT / "src" / "repro" / "cli.py").read_text())
    var_to_verb: dict = {}
    flags: dict = {verb: set() for verb in cli_verbs()}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "add_parser"
            and call.args
            and isinstance(call.args[0], ast.Constant)
        ):
            continue
        verb = call.args[0].value
        for kw in call.keywords:
            if kw.arg != "parents" or not isinstance(kw.value, ast.List):
                continue
            for parent in kw.value.elts:
                if not isinstance(parent, ast.Call):
                    continue
                for pkw in parent.keywords:
                    omitted = (
                        isinstance(pkw.value, ast.Constant)
                        and pkw.value.value is None
                    )
                    if pkw.arg in _COMMON_PARENT_FLAGS and not omitted:
                        flags[verb].update(_COMMON_PARENT_FLAGS[pkw.arg])
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                var_to_verb[tgt.id] = verb
    # Argument groups inherit their parser's verb:
    #   mode = ex.add_mutually_exclusive_group()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr
            in ("add_mutually_exclusive_group", "add_argument_group")
            and isinstance(node.value.func.value, ast.Name)
            and node.value.func.value.id in var_to_verb
        ):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    var_to_verb[tgt.id] = var_to_verb[node.value.func.value.id]
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and isinstance(node.func.value, ast.Name)
        ):
            continue
        verb = var_to_verb.get(node.func.value.id)
        if verb is None:
            continue
        for arg in node.args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and arg.value.startswith("--")
            ):
                flags[verb].add(arg.value)
    return flags


def _workload_spec_calls():
    """Every ``WorkloadSpec(...)`` call in the bundled workload modules."""
    for py in sorted(WORKLOADS_SRC.glob("*.py")):
        tree = ast.parse(py.read_text())
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name == "WorkloadSpec":
                yield node


def registered_workloads() -> set[str]:
    """Workload names registered by the tree, read statically from the
    ``WorkloadSpec(name="...")`` literals in ``src/repro/workloads/``."""
    names = set()
    for call in _workload_spec_calls():
        for kw in call.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                names.add(kw.value.value)
    return names


def workload_param_names() -> set[str]:
    """Every parameter name documented in a spec's ``param_docs`` literal.

    The ``run`` verb generates one ``--flag`` per name at runtime; this is
    the static reconstruction of that flag set.
    """
    names = set()
    for call in _workload_spec_calls():
        for kw in call.keywords:
            if kw.arg != "param_docs" or not isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                continue
            for elt in kw.value.elts:
                if (
                    isinstance(elt, (ast.Tuple, ast.List))
                    and elt.elts
                    and isinstance(elt.elts[0], ast.Constant)
                ):
                    names.add(elt.elts[0].value)
    return names


def check_workload_catalog(corpus: str) -> list[str]:
    """Registry and scenario catalog must agree in both directions, and
    every ``python -m repro run <name>`` in the docs must be runnable."""
    errors = []
    page = ROOT / WORKLOADS_DOC
    if not page.exists():
        return [f"scenario catalog missing: {WORKLOADS_DOC} "
                "(run tools/gen_api_docs.py)"]
    registered = registered_workloads()
    documented = set(_CATALOG_HEADING.findall(page.read_text()))
    for name in sorted(registered - documented):
        errors.append(
            f"workload {name!r} is registered but missing from "
            f"{WORKLOADS_DOC} (run tools/gen_api_docs.py)"
        )
    for name in sorted(documented - registered):
        errors.append(
            f"{WORKLOADS_DOC} documents unknown workload {name!r} "
            "(run tools/gen_api_docs.py)"
        )
    for name in sorted(set(_RUN_WORKLOAD.findall(corpus))):
        if name.startswith("--"):
            continue
        if name not in registered:
            errors.append(
                f"docs invoke 'python -m repro run {name}' but no such "
                "workload is registered"
            )
    return errors


def check_command_flags(rel: str, text: str, verb_flags: dict) -> list[str]:
    """Flags on doc command lines must exist on the verb they are passed to."""
    errors = []
    # Re-join backslash-continued command lines before scanning.
    joined = re.sub(r"\\\s*\n\s*", " ", text)
    for line in joined.splitlines():
        match = _VERB.search(line)
        if not match or match.group(1) not in verb_flags:
            continue
        known = verb_flags[match.group(1)]
        for flag in _FLAG.findall(line[match.end():]):
            if flag not in known:
                errors.append(
                    f"{rel}: verb {match.group(1)!r} has no flag {flag}"
                )
    return errors


def main() -> int:
    errors: list[str] = []
    verbs = cli_verbs()
    verb_flags = cli_verb_flags()
    # The run verb's per-workload parameter flags are generated at runtime
    # from the registry; reconstruct them from the param_docs literals.
    if "run" in verb_flags:
        verb_flags["run"].update(
            "--" + name.replace("_", "-") for name in workload_param_names()
        )
    mentioned: set[str] = set()
    all_text = []
    for rel in PAGES:
        page = ROOT / rel
        if not page.exists():
            errors.append(f"checked page missing: {rel}")
            continue
        text = page.read_text()
        all_text.append(text)
        errors += check_links(page, text)
        errors += check_code_refs(page, text)
        errors += check_command_flags(rel, text, verb_flags)
        for match in _VERB.finditer(text):
            verb = match.group(1)
            mentioned.add(verb)
            if verb not in verbs:
                errors.append(f"{rel}: unknown CLI verb -> {verb}")
        # A verb listed as bare `code` (e.g. the README's CLI-surface list)
        # also counts as documented.
        for verb in verbs:
            if f"`{verb}`" in text:
                mentioned.add(verb)
    for verb in sorted(verbs - mentioned):
        errors.append(f"CLI verb {verb!r} is not documented in any checked page")
    corpus = "\n".join(all_text)
    errors += check_workload_catalog(corpus)
    for verb, required in sorted(REQUIRED_DOCUMENTED_FLAGS.items()):
        for flag in required:
            if flag not in verb_flags.get(verb, set()):
                errors.append(
                    f"required flag {flag} is no longer defined by the "
                    f"{verb!r} verb (update REQUIRED_DOCUMENTED_FLAGS?)"
                )
            elif flag not in corpus:
                errors.append(
                    f"required {verb!r} flag {flag} is not documented in "
                    "any checked page"
                )
    if errors:
        for err in errors:
            print(err)
        print(f"check_docs: {len(errors)} problem(s)")
        return 1
    print(f"check_docs: {len(PAGES)} pages, {len(verbs)} CLI verbs: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
