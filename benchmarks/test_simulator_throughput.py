"""Meta-benchmark: discrete-event simulator throughput.

Not a paper figure — this times the simulation infrastructure itself so
regressions in the DES kernel or the protocol models show up in the
benchmark history.  Reported as events/second of wall time for a
representative HiCMA configuration.
"""

import time

import pytest

from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
from repro.config import scaled_platform
from repro.hicma.dag import build_compression_graph
from repro.runtime import ParsecContext
from repro.sim import Simulator


def test_event_heap_throughput(benchmark):
    """Raw kernel: one million typed-sleep resumes."""

    def run():
        sim = Simulator()

        def proc():
            for _ in range(200_000):
                yield 1e-6

        for _ in range(5):
            sim.process(proc())
        sim.run()
        return sim.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events >= 1_000_000


def test_hicma_simulation_throughput(benchmark, capsys):
    """Full-stack: events/second for a NT=40 HiCMA run (LCI backend)."""

    def run():
        t0 = time.perf_counter()
        r = run_hicma_benchmark(
            "lci", HicmaConfig(matrix_size=36_000, tile_size=900, num_nodes=8)
        )
        return r, time.perf_counter() - t0

    (result, wall) = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\nsimulator throughput: {result.tasks} tasks, "
            f"{result.events_processed:,} events, wall {wall:.2f}s "
            f"({result.events_processed / wall:,.0f} ev/s)"
        )
    # NT=40: 40 potrf + 780 trsm + 780 syrk + 9880 gemm.
    assert result.tasks == 11_480


def test_compression_phase_scales_with_nodes(benchmark):
    """The phase-1 graph is embarrassingly parallel: more nodes, less time."""
    times = {}
    for nodes in (2, 8):
        g = build_compression_graph(24, 1500, num_nodes=nodes)
        ctx = ParsecContext(
            scaled_platform(num_nodes=nodes, cores_per_node=8), backend="lci"
        )
        times[nodes] = ctx.run(g, until=600.0).makespan
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert times[8] < times[2] / 2.5
