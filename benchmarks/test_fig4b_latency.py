"""Figure 4b: mean end-to-end communication latency vs. tile size, plus
communication multithreading (§6.4.2–6.4.3).

Latency is measured from the ACTIVATE handoff following task completion to
the arrival of data, over the entire multicast tree.  Checks:

- LCI achieves lower mean end-to-end latency at every tile size;
- latency tracks the time-to-solution behaviour;
- multithreaded ACTIVATE sending helps LCI (lower latency / TTS at small
  tiles) but is neutral-to-negative for MPI (§6.4.3).
"""

import pytest

from repro.analysis.ascii_plot import ascii_chart, ascii_table


def latency_curves(fig4_sweep):
    tiles = fig4_sweep["tiles"]
    res = fig4_sweep["results"]
    curves = {
        backend: [
            (t, res[(backend, t, False)].mean_flow_latency * 1e3) for t in tiles
        ]
        for backend in ("mpi", "lci")
    }
    for backend in ("mpi", "lci"):
        curves[f"{backend} (MT)"] = [
            (t, res[(backend, t, True)].mean_flow_latency * 1e3)
            for t in fig4_sweep["mt_tiles"]
        ]
    return curves


def check_lci_latency_lower(fig4_sweep):
    res = fig4_sweep["results"]
    for tile in fig4_sweep["tiles"]:
        mpi = res[("mpi", tile, False)].mean_flow_latency
        lci = res[("lci", tile, False)].mean_flow_latency
        assert lci < mpi, f"LCI latency not lower at tile {tile}"


def check_mt_helps_lci_at_small_tiles(fig4_sweep):
    res = fig4_sweep["results"]
    tile = fig4_sweep["mt_tiles"][0]  # smallest MT-scanned tile
    plain = res[("lci", tile, False)]
    mt = res[("lci", tile, True)]
    assert mt.time_to_solution <= plain.time_to_solution * 1.01
    assert mt.mean_flow_latency <= plain.mean_flow_latency * 1.05


def check_mt_not_helping_mpi(fig4_sweep):
    """§6.4.3: with the MPI backend, multithreading is generally neutral or
    negative."""
    res = fig4_sweep["results"]
    gains = []
    for tile in fig4_sweep["mt_tiles"]:
        plain = res[("mpi", tile, False)].time_to_solution
        mt = res[("mpi", tile, True)].time_to_solution
        gains.append((plain - mt) / plain)
    assert max(gains) < 0.05  # never a significant win


def check_latency_tracks_tts(fig4_sweep):
    """Backend latency ordering matches TTS ordering at small tiles."""
    res = fig4_sweep["results"]
    tile = fig4_sweep["tiles"][0]
    mpi, lci = res[("mpi", tile, False)], res[("lci", tile, False)]
    assert (lci.mean_flow_latency < mpi.mean_flow_latency) == (
        lci.time_to_solution < mpi.time_to_solution
    )


def test_fig4b_regenerate(fig4_sweep, benchmark, capsys):
    benchmark.pedantic(lambda: latency_curves(fig4_sweep), rounds=1, iterations=1)
    curves = latency_curves(fig4_sweep)
    with capsys.disabled():
        print()
        print(
            ascii_chart(
                curves,
                title=f"Fig 4b: end-to-end communication latency, "
                f"N={fig4_sweep['matrix']}, 16 nodes",
                x_label="tile size",
                y_label="ms",
            )
        )
        res = fig4_sweep["results"]
        rows = []
        for t in fig4_sweep["tiles"]:
            mpi = res[("mpi", t, False)].mean_flow_latency * 1e3
            lci = res[("lci", t, False)].mean_flow_latency * 1e3
            rows.append((t, f"{mpi:.3f}", f"{lci:.3f}", f"{(mpi - lci) / mpi:+.1%}"))
        print(ascii_table(["tile", "MPI e2e (ms)", "LCI e2e (ms)", "LCI gain"], rows))
        for tile in fig4_sweep["mt_tiles"]:
            for backend in ("mpi", "lci"):
                plain = res[(backend, tile, False)]
                mt = res[(backend, tile, True)]
                print(
                    f"MT @tile {tile} [{backend}]: TTS {plain.time_to_solution:.3f}"
                    f"->{mt.time_to_solution:.3f} s, e2e "
                    f"{plain.mean_flow_latency * 1e3:.3f}->"
                    f"{mt.mean_flow_latency * 1e3:.3f} ms"
                )
    check_lci_latency_lower(fig4_sweep)
    check_mt_helps_lci_at_small_tiles(fig4_sweep)
    check_mt_not_helping_mpi(fig4_sweep)
    check_latency_tracks_tts(fig4_sweep)


def test_lci_latency_lower_at_every_tile(fig4_sweep):
    check_lci_latency_lower(fig4_sweep)


def test_multithreading_helps_lci(fig4_sweep):
    check_mt_helps_lci_at_small_tiles(fig4_sweep)


def test_multithreading_does_not_help_mpi(fig4_sweep):
    check_mt_not_helping_mpi(fig4_sweep)


def test_latency_ordering_tracks_tts_ordering(fig4_sweep):
    check_latency_tracks_tts(fig4_sweep)
