"""Ablation A5: MPI RMA put vs. the emulated two-sided put (§4.2.2).

The paper: "It is certainly not impossible to use the MPI RMA interfaces
to implement the PaRSEC put API, but exploring this option has been left
for future work", citing dynamic-window attach/detach limitations [25] and
the missing remote-completion notification.  We implement that option and
quantify why the two-sided emulation ships instead.
"""

import pytest

from repro.analysis.ascii_plot import ascii_table
from repro.bench.hicma_bench import HicmaConfig
from repro.config import scaled_platform
from repro.hicma.dag import build_tlr_cholesky_graph
from repro.hicma.ranks import RankModel
from repro.hicma.timing import KernelTimeModel
from repro.runtime.context import ParsecContext


@pytest.fixture(scope="module")
def results():
    cfg = HicmaConfig(matrix_size=36_000, tile_size=900, num_nodes=8)
    platform = scaled_platform(num_nodes=8, cores_per_node=8)
    out = {}
    for mode in ("twosided", "rma"):
        graph = build_tlr_cholesky_graph(
            cfg.nt,
            cfg.tile_size,
            num_nodes=cfg.num_nodes,
            rank_model=RankModel(cfg.nt, cfg.tile_size, cfg.maxrank),
            time_model=KernelTimeModel(platform.compute),
        )
        ctx = ParsecContext(platform, backend="mpi", mpi_put_mode=mode)
        out[mode] = ctx.run(graph, until=3600.0)
    return out


def check_rma_higher_latency(results):
    assert results["rma"].mean_flow_latency > results["twosided"].mean_flow_latency


def check_rma_not_faster(results):
    assert results["rma"].makespan >= results["twosided"].makespan * 0.98


def test_ablation_rma_put(results, benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        rows = [
            (mode, f"{r.makespan:.3f}", f"{r.mean_flow_latency * 1e3:.3f}")
            for mode, r in results.items()
        ]
        print()
        print(
            ascii_table(
                ["put implementation", "TTS (s)", "e2e latency (ms)"],
                rows,
                title="Ablation A5: MPI two-sided emulated put vs dynamic-"
                "window RMA put (HiCMA, 8 nodes)",
            )
        )
    check_rma_higher_latency(results)
    check_rma_not_faster(results)


def test_rma_put_has_higher_latency(results):
    check_rma_higher_latency(results)


def test_rma_put_not_faster_overall(results):
    check_rma_not_faster(results)
