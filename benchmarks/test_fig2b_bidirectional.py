"""Figure 2b: two-stream (bidirectional) ping-pong bandwidth (§6.2).

Curves: LCI and Open MPI with inter-iteration synchronization, and both
with the synchronization removed.  Checks the paper's findings:

- removing the Sync task recovers bandwidth lost to serialization,
  letting both backends approach peak bidirectional rate;
- LCI again sustains smaller fragments than MPI;
- aggregate bidirectional bandwidth exceeds the unidirectional peak.
"""

import pytest

from repro.analysis.ascii_plot import ascii_chart
from repro.bench import paper_data
from repro.bench.pingpong import (
    PingPongConfig,
    default_granularities,
    run_pingpong_benchmark,
)
from repro.units import KiB


@pytest.fixture(scope="module")
def curves():
    sizes = default_granularities()
    out = {}
    for backend in ("mpi", "lci"):
        for sync in (True, False):
            key = f"{backend}{'' if sync else ' (no sync)'}"
            pts = []
            for size in sizes:
                r = run_pingpong_benchmark(
                    backend,
                    PingPongConfig(fragment_size=size, streams=2, sync=sync),
                )
                pts.append((size, r.bandwidth_gbit))
            out[key] = pts
    return out


def check_no_sync_recovers(curves):
    for backend in ("mpi", "lci"):
        sync_last = curves[backend][-1][1]
        nosync_last = curves[f"{backend} (no sync)"][-1][1]
        assert nosync_last >= sync_last * 0.99


def check_bidirectional_peak(curves):
    peak = max(bw for key in curves for _s, bw in curves[key])
    assert peak > 1.5 * paper_data.FIG2A_PEAK_GBIT


def check_lci_dominates(curves):
    for (s, mpi_bw), (_s, lci_bw) in zip(curves["mpi"], curves["lci"]):
        assert lci_bw >= mpi_bw * 0.98, f"MPI beat LCI at {s} B"


def check_activate_aggregation(sync_r, nosync_r):
    """§6.2: less synchronization ⇒ fewer ACTIVATEs aggregated."""
    assert nosync_r.activates_sent > 0 and sync_r.activates_sent > 0
    per_iter_nosync = nosync_r.activates_sent / nosync_r.config.iterations
    per_iter_sync = sync_r.activates_sent / sync_r.config.iterations
    assert per_iter_nosync > 0.3 * per_iter_sync


def test_fig2b_regenerate(curves, benchmark, capsys):
    benchmark.pedantic(
        lambda: run_pingpong_benchmark(
            "lci", PingPongConfig(fragment_size=256 * KiB, streams=2)
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            ascii_chart(
                curves,
                title="Fig 2b: ping-pong bandwidth, two streams",
                logx=True,
                x_label="granularity (bytes)",
                y_label="Gbit/s",
            )
        )
    check_no_sync_recovers(curves)
    check_bidirectional_peak(curves)
    check_lci_dominates(curves)


def test_no_sync_recovers_lost_bandwidth(curves):
    check_no_sync_recovers(curves)


def test_bidirectional_exceeds_unidirectional_peak(curves):
    check_bidirectional_peak(curves)


def test_lci_dominates_mpi_bidirectional(curves):
    check_lci_dominates(curves)


def test_no_sync_changes_activate_aggregation(curves):
    size = default_granularities()[0]
    sync_r = run_pingpong_benchmark(
        "lci", PingPongConfig(fragment_size=size, streams=2, sync=True)
    )
    nosync_r = run_pingpong_benchmark(
        "lci", PingPongConfig(fragment_size=size, streams=2, sync=False)
    )
    check_activate_aggregation(sync_r, nosync_r)
