"""Ablation A3: dedicated vs. free-floating comm/progress threads (§6.1.2).

The paper pins the communication (and LCI progress) threads to cores in
the NIC's NUMA domain: "tests with free-floating communication and
progress threads showed up to a 25 % increase in mean end-to-end latency".
We toggle the binding and check the latency penalty appears for both
backends.
"""

import dataclasses

import pytest

from repro.analysis.ascii_plot import ascii_table
from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
from repro.config import scaled_platform


@pytest.fixture(scope="module")
def results():
    out = {}
    for backend in ("mpi", "lci"):
        for dedicated in (True, False):
            platform = dataclasses.replace(
                scaled_platform(num_nodes=8, cores_per_node=8),
                dedicated_comm_cores=dedicated,
            )
            cfg = HicmaConfig(matrix_size=36_000, tile_size=900, num_nodes=8)
            out[(backend, dedicated)] = run_hicma_benchmark(
                backend, cfg, platform=platform
            )
    return out


def check_floating_latency_penalty(results):
    for backend in ("mpi", "lci"):
        pinned = results[(backend, True)].mean_flow_latency
        floating = results[(backend, False)].mean_flow_latency
        assert floating > pinned, f"{backend}: no floating-thread penalty"
        # The paper reports "up to 25 %"; allow a broad plausible band.
        assert floating < pinned * 2.0


def check_floating_tts_penalty(results):
    for backend in ("mpi", "lci"):
        assert (
            results[(backend, False)].time_to_solution
            >= results[(backend, True)].time_to_solution * 0.99
        )


def test_ablation_thread_binding(results, benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        rows = []
        for (backend, dedicated), r in results.items():
            rows.append(
                (backend, "pinned" if dedicated else "floating",
                 f"{r.time_to_solution:.3f}", f"{r.mean_flow_latency * 1e3:.3f}")
            )
        print()
        print(
            ascii_table(
                ["backend", "threads", "TTS (s)", "e2e latency (ms)"],
                rows,
                title="Ablation A3: comm/progress thread binding",
            )
        )
    check_floating_latency_penalty(results)
    check_floating_tts_penalty(results)


def test_floating_threads_increase_latency(results):
    check_floating_latency_penalty(results)


def test_floating_threads_do_not_improve_tts(results):
    check_floating_tts_penalty(results)
