"""Ablation A2: LCI eager-data-in-handshake puts (§5.3.3).

"If the message data is sufficiently small, then it can be sent eagerly
inside the handshake message" — skipping the Direct rendezvous entirely.
We disable the optimization and check that, on a workload dominated by
small dataflows, it reduces end-to-end latency.
"""

import dataclasses

import pytest

from repro.analysis.ascii_plot import ascii_table
from repro.config import scaled_platform
from repro.runtime import ParsecContext, TaskGraph
from repro.units import KiB


def small_flow_graph(n_flows=200, size=4 * KiB):
    """Many small producer→consumer dataflows between two nodes."""
    g = TaskGraph()
    for i in range(n_flows):
        t = g.add_task(node=0, duration=1e-6)
        f = g.add_flow(t, size)
        g.add_task(node=1, duration=1e-6, inputs=[f])
    return g


@pytest.fixture(scope="module")
def results():
    out = {}
    for eager_max in (0, 8 * KiB):
        base = scaled_platform(num_nodes=2, cores_per_node=8)
        platform = dataclasses.replace(
            base,
            runtime=dataclasses.replace(base.runtime, lci_eager_put_max=eager_max),
        )
        ctx = ParsecContext(platform, backend="lci")
        out[eager_max] = ctx.run(small_flow_graph(), until=60.0)
    return out


def check_eager_reduces_latency(results):
    with_eager = results[8 * KiB]
    without = results[0]
    assert with_eager.mean_flow_latency < without.mean_flow_latency


def check_eager_reduces_makespan(results):
    assert results[8 * KiB].makespan <= results[0].makespan * 1.02


def test_ablation_eager_put(results, benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        rows = [
            ("disabled" if k == 0 else "enabled",
             f"{r.makespan * 1e3:.3f}", f"{r.mean_flow_latency * 1e6:.2f}")
            for k, r in results.items()
        ]
        print()
        print(
            ascii_table(
                ["eager put", "makespan (ms)", "e2e latency (us)"],
                rows,
                title="Ablation A2: LCI eager-data-in-handshake",
            )
        )
    check_eager_reduces_latency(results)
    check_eager_reduces_makespan(results)


def test_eager_put_reduces_latency(results):
    check_eager_reduces_latency(results)


def test_eager_put_reduces_makespan(results):
    check_eager_reduces_makespan(results)
