"""Table 2: tile size with lowest time-to-solution per node count (§6.4.4).

Checks the paper's structural findings:

- the optimal tile size shrinks (weakly) as node count grows — more cores
  require more tasks for parallelism;
- at scale, LCI's optimum is at or below MPI's (it sustains smaller
  tiles), diverging at the highest node counts like the paper's
  16/32-node columns (MPI 3000 vs LCI 2400/1800).
"""

import pytest

from benchmarks.conftest import best_tile
from repro.analysis.ascii_plot import ascii_table
from repro.bench import paper_data


def table(fig5_sweep):
    nodes = sorted(fig5_sweep["node_tiles"])
    return {
        backend: {n: best_tile(fig5_sweep, backend, n) for n in nodes}
        for backend in ("mpi", "lci")
    }


def check_best_tile_weakly_decreasing(tbl):
    for backend in ("mpi", "lci"):
        tiles = [tbl[backend][n] for n in sorted(tbl[backend])]
        assert all(b <= a for a, b in zip(tiles, tiles[1:])), (
            f"{backend} best tile not weakly decreasing: {tiles}"
        )


def check_lci_scales_to_smaller_tiles(tbl, sweep):
    nodes = sorted(tbl["lci"])
    res = sweep["results"]
    for n in nodes:
        if tbl["lci"][n] > tbl["mpi"][n]:
            # Permitted only when LCI's curve is flat there (a near-tie in
            # time-to-solution at the two tiles) — compute-bound small node
            # counts have broad optima, as the paper's identical 1–8-node
            # columns show.
            own = res[("lci", n, tbl["lci"][n])].time_to_solution
            at_mpi_tile = res[("lci", n, tbl["mpi"][n])].time_to_solution
            assert at_mpi_tile <= own * 1.03, (
                f"{n} nodes: LCI optimum {tbl['lci'][n]} > MPI "
                f"{tbl['mpi'][n]} and not a near-tie"
            )
    # At the largest node count LCI's optimum is strictly smaller, as in
    # the paper's 16- and 32-node columns.
    assert tbl["lci"][nodes[-1]] < tbl["mpi"][nodes[-1]]


def test_table2_regenerate(fig5_sweep, benchmark, capsys):
    benchmark.pedantic(lambda: table(fig5_sweep), rounds=1, iterations=1)
    tbl = table(fig5_sweep)
    nodes = sorted(fig5_sweep["node_tiles"])
    with capsys.disabled():
        print()
        rows = [
            ("Open MPI",) + tuple(tbl["mpi"][n] for n in nodes),
            ("LCI",) + tuple(tbl["lci"][n] for n in nodes),
        ]
        print(
            ascii_table(
                ["backend"] + [str(n) for n in nodes],
                rows,
                title=f"Table 2: best tile size per node count "
                f"(N={fig5_sweep['matrix']})",
            )
        )
        print(f"paper (N=360,000): {paper_data.TABLE2_BEST_TILE}")
    check_best_tile_weakly_decreasing(tbl)
    check_lci_scales_to_smaller_tiles(tbl, fig5_sweep)


def test_best_tile_shrinks_with_node_count(fig5_sweep):
    check_best_tile_weakly_decreasing(table(fig5_sweep))


def test_lci_optimum_smaller_at_scale(fig5_sweep):
    check_lci_scales_to_smaller_tiles(table(fig5_sweep), fig5_sweep)
