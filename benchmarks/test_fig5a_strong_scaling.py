"""Figure 5a: strong scaling of TLR Cholesky, constant N (§6.4.4).

Three curves: LCI at its per-node-count best tile size, Open MPI at LCI's
tile sizes, and "Open MPI (best)" at MPI's own best tile sizes.  Checks:

- time-to-solution decreases as nodes are added (strong scaling works);
- LCI ≤ Open MPI (best) at scale, because it sustains smaller tiles;
- at small node counts the backends are comparable (communication is not
  the bottleneck there).
"""

import pytest

from benchmarks.conftest import best_tile
from repro.analysis.ascii_plot import ascii_chart, ascii_table


def scaling_curves(fig5_sweep):
    res = fig5_sweep["results"]
    nodes = sorted(fig5_sweep["node_tiles"])
    lci_best = {n: best_tile(fig5_sweep, "lci", n) for n in nodes}
    mpi_best = {n: best_tile(fig5_sweep, "mpi", n) for n in nodes}
    return {
        "lci": [(n, res[("lci", n, lci_best[n])].time_to_solution) for n in nodes],
        "mpi": [(n, res[("mpi", n, lci_best[n])].time_to_solution) for n in nodes],
        "mpi (best)": [
            (n, res[("mpi", n, mpi_best[n])].time_to_solution) for n in nodes
        ],
    }


def check_scaling_down(curves):
    for name in ("lci", "mpi (best)"):
        tts = [v for _n, v in curves[name]]
        assert tts[-1] < tts[0], f"{name} did not strong-scale"


def check_lci_wins_at_scale(curves):
    last = -1
    lci = curves["lci"][last][1]
    mpi_best = curves["mpi (best)"][last][1]
    assert lci <= mpi_best * 1.02


def check_mpi_best_not_worse_than_mpi_at_lci_tiles(curves):
    for (n, mpi), (_n, mpi_best) in zip(curves["mpi"], curves["mpi (best)"]):
        assert mpi_best <= mpi * 1.001, f"best-tile MPI worse at {n} nodes"


def test_fig5a_regenerate(fig5_sweep, benchmark, capsys):
    benchmark.pedantic(lambda: scaling_curves(fig5_sweep), rounds=1, iterations=1)
    curves = scaling_curves(fig5_sweep)
    with capsys.disabled():
        print()
        print(
            ascii_chart(
                curves,
                title=f"Fig 5a: strong scaling, N={fig5_sweep['matrix']}",
                logx=True,
                x_label="nodes",
                y_label="time-to-solution (s)",
            )
        )
        rows = [
            (n, f"{dict(curves['lci'])[n]:.3f}", f"{dict(curves['mpi'])[n]:.3f}",
             f"{dict(curves['mpi (best)'])[n]:.3f}")
            for n in sorted(fig5_sweep["node_tiles"])
        ]
        print(
            ascii_table(
                ["nodes", "LCI (s)", "MPI @LCI tile (s)", "MPI best (s)"], rows
            )
        )
    check_scaling_down(curves)
    check_lci_wins_at_scale(curves)
    check_mpi_best_not_worse_than_mpi_at_lci_tiles(curves)


def test_strong_scaling_reduces_tts(fig5_sweep):
    check_scaling_down(scaling_curves(fig5_sweep))


def test_lci_at_least_matches_mpi_best_at_scale(fig5_sweep):
    check_lci_wins_at_scale(scaling_curves(fig5_sweep))


def test_mpi_best_dominates_mpi_at_lci_tiles(fig5_sweep):
    check_mpi_best_not_worse_than_mpi_at_lci_tiles(scaling_curves(fig5_sweep))
