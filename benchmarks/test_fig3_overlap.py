"""Figure 3: computation/communication overlap with GEMM-like intensity
(§6.3).

Curves: LCI, Open MPI, plus the analytic "Roofline" (perfect overlap) and
"No Overlap" references.  Checks the paper's findings:

- at large fragments both backends track the bounds (parallelism-limited);
- as fragments shrink, MPI collapses first: LCI ≈2× MPI at 128 KiB and
  roughly an order of magnitude faster at 32 KiB;
- measured performance never exceeds the roofline.
"""

import pytest

from repro.analysis.ascii_plot import ascii_chart, ascii_table
from repro.bench import paper_data
from repro.bench.overlap import (
    OverlapConfig,
    no_overlap_flops,
    roofline_flops,
    run_overlap_benchmark,
)
from repro.config import paper_scale_enabled, scaled_platform
from repro.units import KiB, MiB


def overlap_sizes():
    if paper_scale_enabled():
        return [32 * KiB * (2**i) for i in range(9)]  # 32 KiB .. 8 MiB
    return [32 * KiB, 128 * KiB, 512 * KiB, 2 * MiB, 8 * MiB]


@pytest.fixture(scope="module")
def platform():
    return scaled_platform(num_nodes=2)


@pytest.fixture(scope="module")
def curves(platform):
    out = {"mpi": [], "lci": [], "roofline": [], "no overlap": []}
    for size in overlap_sizes():
        cfg = OverlapConfig(fragment_size=size)
        for backend in ("mpi", "lci"):
            r = run_overlap_benchmark(backend, cfg, platform)
            out[backend].append((size, r.flops_per_s / 1e12))
        out["roofline"].append((size, roofline_flops(cfg, platform) / 1e12))
        out["no overlap"].append((size, no_overlap_flops(cfg, platform) / 1e12))
    return out


def check_ratio_at(curves, size, min_ratio):
    mpi = dict(curves["mpi"]).get(size)
    lci = dict(curves["lci"]).get(size)
    assert mpi is not None and lci is not None
    assert lci / mpi >= min_ratio, f"LCI/MPI={lci / mpi:.2f} at {size} B"


def check_roofline_bounds(curves):
    roof = dict(curves["roofline"])
    for backend in ("mpi", "lci"):
        for size, tf in curves[backend]:
            assert tf <= roof[size] * 1.1, f"{backend} above roofline at {size}"


def check_convergence_at_large(curves):
    """With coarse tasks the backends perform alike (within 10 %)."""
    size = overlap_sizes()[-1]
    mpi = dict(curves["mpi"])[size]
    lci = dict(curves["lci"])[size]
    assert abs(lci - mpi) / max(lci, mpi) < 0.10


def test_fig3_regenerate(curves, platform, benchmark, capsys):
    benchmark.pedantic(
        lambda: run_overlap_benchmark(
            "lci", OverlapConfig(fragment_size=512 * KiB), platform
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            ascii_chart(
                curves,
                title="Fig 3: overlap benchmark, GEMM-like intensity",
                logx=True,
                x_label="granularity (bytes)",
                y_label="TFLOP/s",
            )
        )
        mpi = dict(curves["mpi"])
        lci = dict(curves["lci"])
        rows = [
            (f"{s // 1024} KiB", f"{mpi[s]:.3f}", f"{lci[s]:.3f}", f"{lci[s] / mpi[s]:.1f}x")
            for s in sorted(mpi)
        ]
        print(ascii_table(["granularity", "MPI TFLOP/s", "LCI TFLOP/s", "LCI/MPI"], rows))
        print(
            f"paper: LCI/MPI >= {paper_data.FIG3_LCI_OVER_MPI[128 * KiB]}x at 128 KiB, "
            f"~{paper_data.FIG3_LCI_OVER_MPI[32 * KiB]:.0f}x at 32 KiB"
        )
    check_ratio_at(curves, 128 * KiB, 1.8)
    check_ratio_at(curves, 32 * KiB, 4.0)
    check_roofline_bounds(curves)
    check_convergence_at_large(curves)


def test_lci_twice_mpi_at_128kib(curves):
    check_ratio_at(curves, 128 * KiB, 1.8)


def test_lci_order_of_magnitude_at_32kib(curves):
    check_ratio_at(curves, 32 * KiB, 4.0)


def test_measured_below_roofline(curves):
    check_roofline_bounds(curves)


def test_backends_converge_at_coarse_granularity(curves):
    check_convergence_at_large(curves)


def test_roofline_above_no_overlap(curves):
    roof = dict(curves["roofline"])
    noov = dict(curves["no overlap"])
    for size in roof:
        assert roof[size] >= noov[size]
