"""Figure 2a: one-stream ping-pong bandwidth vs. task granularity (§6.2).

Regenerates the three curves — LCI backend, Open MPI backend, NetPIPE
baseline — and checks the paper's findings:

- both backends reach near-peak (~100 Gbit/s) bandwidth with coarse tasks;
- performance decays as fragments shrink, MPI first;
- LCI sustains a given efficiency at tasks ≈2.8× smaller than MPI
  (paper: 2.83×).
"""

import pytest

from repro.analysis.ascii_plot import ascii_chart, ascii_table
from repro.bench import paper_data
from repro.bench.pingpong import (
    PingPongConfig,
    default_granularities,
    run_pingpong_benchmark,
)
from repro.config import NetworkConfig
from repro.network.netpipe import netpipe_bandwidth_curve
from repro.units import gbit_per_s


@pytest.fixture(scope="module")
def curves():
    sizes = default_granularities()
    out = {"mpi": [], "lci": []}
    for backend in ("mpi", "lci"):
        for size in sizes:
            r = run_pingpong_benchmark(backend, PingPongConfig(fragment_size=size))
            out[backend].append((size, r.bandwidth_gbit))
    out["netpipe"] = [
        (s, gbit_per_s(bw)) for s, bw in netpipe_bandwidth_curve(sizes, NetworkConfig())
    ]
    return out


def _iso_bandwidth_size(curve, target_gbit):
    """Interpolate the fragment size where a curve crosses target_gbit."""
    for (s0, b0), (s1, b1) in zip(curve, curve[1:]):
        if b0 <= target_gbit <= b1:
            frac = (target_gbit - b0) / (b1 - b0)
            return s0 + frac * (s1 - s0)
    return None


def render(curves) -> str:
    chart = ascii_chart(
        curves,
        title="Fig 2a: PaRSEC ping-pong bandwidth, one stream",
        logx=True,
        x_label="granularity (bytes)",
        y_label="Gbit/s",
    )
    rows = [
        (f"{s // 1024} KiB",)
        + tuple(f"{dict(curves[k]).get(s, float('nan')):.1f}" for k in ("mpi", "lci", "netpipe"))
        for s, _ in curves["mpi"]
    ]
    table = ascii_table(
        ["granularity", "Open MPI Gbit/s", "LCI Gbit/s", "NetPIPE Gbit/s"], rows
    )
    mpi_size = _iso_bandwidth_size(curves["mpi"], 60.0)
    lci_size = _iso_bandwidth_size(curves["lci"], 60.0)
    ratio = mpi_size / lci_size if mpi_size and lci_size else float("nan")
    note = (
        f"iso-bandwidth (60 Gbit/s) granularity ratio MPI/LCI: {ratio:.2f} "
        f"(paper: {paper_data.FIG2A_GRANULARITY_RATIO})"
    )
    return "\n".join([chart, table, note])


def check_near_peak(curves):
    for backend in ("mpi", "lci"):
        peak = max(bw for _s, bw in curves[backend])
        assert peak > 0.88 * paper_data.FIG2A_PEAK_GBIT


def check_lci_dominates(curves):
    for (s, mpi_bw), (_s2, lci_bw) in zip(curves["mpi"], curves["lci"]):
        assert lci_bw >= mpi_bw, f"MPI beat LCI at {s} B"


def check_monotone(curves):
    for backend in ("mpi", "lci"):
        bws = [bw for _s, bw in curves[backend]]
        assert all(b2 >= b1 * 0.95 for b1, b2 in zip(bws, bws[1:]))


def check_granularity_ratio(curves):
    mpi_size = _iso_bandwidth_size(curves["mpi"], 60.0)
    lci_size = _iso_bandwidth_size(curves["lci"], 60.0)
    assert mpi_size is not None and lci_size is not None
    ratio = mpi_size / lci_size
    assert 1.8 <= ratio <= 4.5, (
        f"granularity ratio {ratio:.2f} out of range vs paper "
        f"{paper_data.FIG2A_GRANULARITY_RATIO}"
    )


def check_netpipe_bound(curves):
    np_bw = dict(curves["netpipe"])
    for backend in ("mpi", "lci"):
        s, bw = curves[backend][-1]
        assert np_bw[s] >= bw * 0.95


def test_fig2a_regenerate(curves, benchmark, capsys):
    """Regenerates Fig. 2a and verifies every reported property.

    The benchmark fixture times one representative simulation (LCI at the
    paper's 128 KiB comparison point)."""
    from repro.units import KiB

    benchmark.pedantic(
        lambda: run_pingpong_benchmark("lci", PingPongConfig(fragment_size=128 * KiB)),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(render(curves))
    check_near_peak(curves)
    check_lci_dominates(curves)
    check_monotone(curves)
    check_granularity_ratio(curves)
    check_netpipe_bound(curves)


def test_both_backends_reach_near_peak(curves):
    check_near_peak(curves)


def test_lci_dominates_mpi_at_every_granularity(curves):
    check_lci_dominates(curves)


def test_bandwidth_monotone_in_granularity(curves):
    check_monotone(curves)


def test_granularity_ratio_matches_paper(curves):
    check_granularity_ratio(curves)


def test_netpipe_baseline_bounds_runtime_curves(curves):
    check_netpipe_bound(curves)
