"""Figure 5b: end-to-end communication latency while strong scaling
(§6.4.4).

Checks:

- mean end-to-end latency grows with node count (more multicast hops and
  more remote flows per datum);
- LCI's latency stays below Open MPI's (both at LCI's tiles and at MPI's
  own best tiles) once communication matters (≥ 4 nodes).
"""

import pytest

from benchmarks.conftest import best_tile
from repro.analysis.ascii_plot import ascii_chart


def latency_curves(fig5_sweep):
    res = fig5_sweep["results"]
    nodes = [n for n in sorted(fig5_sweep["node_tiles"]) if n > 1]
    lci_best = {n: best_tile(fig5_sweep, "lci", n) for n in nodes}
    mpi_best = {n: best_tile(fig5_sweep, "mpi", n) for n in nodes}
    return {
        "lci": [
            (n, res[("lci", n, lci_best[n])].mean_flow_latency * 1e3) for n in nodes
        ],
        "mpi": [
            (n, res[("mpi", n, lci_best[n])].mean_flow_latency * 1e3) for n in nodes
        ],
        "mpi (best)": [
            (n, res[("mpi", n, mpi_best[n])].mean_flow_latency * 1e3) for n in nodes
        ],
    }


def check_latency_grows_with_nodes(curves):
    lat = [v for _n, v in curves["lci"]]
    assert lat[-1] > lat[0]


def check_lci_latency_lower_at_scale(curves):
    for (n, mpi_lat), (_n, lci_lat) in zip(curves["mpi"], curves["lci"]):
        if n >= 4:
            assert lci_lat < mpi_lat, f"LCI latency not lower at {n} nodes"


def test_fig5b_regenerate(fig5_sweep, benchmark, capsys):
    benchmark.pedantic(lambda: latency_curves(fig5_sweep), rounds=1, iterations=1)
    curves = latency_curves(fig5_sweep)
    with capsys.disabled():
        print()
        print(
            ascii_chart(
                curves,
                title=f"Fig 5b: end-to-end latency vs nodes, "
                f"N={fig5_sweep['matrix']}",
                logx=True,
                x_label="nodes",
                y_label="ms",
            )
        )
    check_latency_grows_with_nodes(curves)
    check_lci_latency_lower_at_scale(curves)


def test_latency_grows_with_node_count(fig5_sweep):
    check_latency_grows_with_nodes(latency_curves(fig5_sweep))


def test_lci_latency_lower_at_four_plus_nodes(fig5_sweep):
    check_lci_latency_lower_at_scale(latency_curves(fig5_sweep))
