"""Ablation A4 (§7 future work): native one-sided LCI put and multiple
communication/progress threads.

The paper's conclusion sketches two follow-ups: LCI features that
"directly implement the PaRSEC put interface" and "multiple communication
or progress threads to further reduce communication latency in
highly-loaded scenarios".  Both are implemented as options; this bench
quantifies them on the HiCMA workload.
"""

import pytest

from repro.analysis.ascii_plot import ascii_table
from repro.bench.hicma_bench import HicmaConfig
from repro.config import scaled_platform
from repro.hicma.dag import build_tlr_cholesky_graph
from repro.hicma.ranks import RankModel
from repro.hicma.timing import KernelTimeModel
from repro.runtime.context import ParsecContext


VARIANTS = {
    "lci (emulated put)": {},
    "lci (native put)": {"native_put": True},
    "lci (2 comm threads)": {"num_comm_threads": 2},
    "lci (2 progress threads)": {"num_progress_threads": 2},
    "lci (native + 2+2)": {
        "native_put": True,
        "num_comm_threads": 2,
        "num_progress_threads": 2,
    },
}


@pytest.fixture(scope="module")
def results():
    cfg = HicmaConfig(matrix_size=36_000, tile_size=450, num_nodes=8)
    platform = scaled_platform(num_nodes=8, cores_per_node=8)
    graph_args = dict(
        rank_model=RankModel(cfg.nt, cfg.tile_size, cfg.maxrank),
        time_model=KernelTimeModel(platform.compute),
    )
    out = {}
    for name, kwargs in VARIANTS.items():
        graph = build_tlr_cholesky_graph(
            cfg.nt, cfg.tile_size, num_nodes=cfg.num_nodes, **graph_args
        )
        ctx = ParsecContext(platform, backend="lci", **kwargs)
        out[name] = ctx.run(graph, until=3600.0)
    return out


def check_native_put_reduces_latency(results):
    base = results["lci (emulated put)"]
    native = results["lci (native put)"]
    assert native.mean_flow_latency < base.mean_flow_latency


def check_combined_variant_best_or_close(results):
    combined = results["lci (native + 2+2)"]
    base = results["lci (emulated put)"]
    assert combined.makespan <= base.makespan * 1.05


def test_ablation_future_work(results, benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        rows = [
            (name, f"{r.makespan:.3f}", f"{r.mean_flow_latency * 1e3:.3f}")
            for name, r in results.items()
        ]
        print()
        print(
            ascii_table(
                ["variant", "TTS (s)", "e2e latency (ms)"],
                rows,
                title="Ablation A4: §7 future-work features on HiCMA "
                "(N=36000, tile=450, 8 nodes)",
            )
        )
    check_native_put_reduces_latency(results)
    check_combined_variant_best_or_close(results)


def test_native_put_reduces_latency(results):
    check_native_put_reduces_latency(results)


def test_combined_future_work_variant(results):
    check_combined_variant_best_or_close(results)
