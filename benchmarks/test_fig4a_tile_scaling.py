"""Figure 4a: TLR Cholesky time-to-solution vs. tile size, 16 nodes
(§6.4.2).

Checks the paper's findings:

- both backends show a U-shape: large tiles starve parallelism, small
  tiles bottleneck on communication;
- LCI achieves lower time-to-solution at every tile size;
- the improvement diminishes at larger tile sizes (latency is hardware-
  bound there);
- LCI's optimum tile size is at or below MPI's (it scales to smaller
  tasks).
"""

import pytest

from repro.analysis.ascii_plot import ascii_chart, ascii_table


def tts_curves(fig4_sweep):
    tiles = fig4_sweep["tiles"]
    res = fig4_sweep["results"]
    return {
        backend: [(t, res[(backend, t, False)].time_to_solution) for t in tiles]
        for backend in ("mpi", "lci")
    }


def check_lci_wins_everywhere(fig4_sweep):
    res = fig4_sweep["results"]
    for tile in fig4_sweep["tiles"]:
        mpi = res[("mpi", tile, False)].time_to_solution
        lci = res[("lci", tile, False)].time_to_solution
        assert lci <= mpi * 1.02, f"LCI slower at tile {tile}: {lci} vs {mpi}"


def check_u_shape(fig4_sweep):
    """Each backend's best tile is interior (neither extreme) or at least
    the curve is non-monotone for one of the backends."""
    res = fig4_sweep["results"]
    tiles = fig4_sweep["tiles"]
    interior = False
    for backend in ("mpi", "lci"):
        tts = [res[(backend, t, False)].time_to_solution for t in tiles]
        best = tts.index(min(tts))
        if 0 < best < len(tiles) - 1:
            interior = True
    assert interior, "no interior optimum: missing a regime boundary"


def check_lci_best_tile_not_larger(fig4_sweep):
    res = fig4_sweep["results"]
    tiles = fig4_sweep["tiles"]

    def best(backend):
        return min(tiles, key=lambda t: res[(backend, t, False)].time_to_solution)

    assert best("lci") <= best("mpi")


def check_improvement_shrinks_with_tile_size(fig4_sweep):
    """The LCI advantage is largest at the smallest tiles."""
    res = fig4_sweep["results"]
    tiles = fig4_sweep["tiles"]
    small = tiles[0]
    large = tiles[-1]

    def gain(tile):
        mpi = res[("mpi", tile, False)].time_to_solution
        lci = res[("lci", tile, False)].time_to_solution
        return (mpi - lci) / mpi

    assert gain(small) > gain(large)


def test_fig4a_regenerate(fig4_sweep, benchmark, capsys):
    benchmark.pedantic(lambda: tts_curves(fig4_sweep), rounds=1, iterations=1)
    curves = tts_curves(fig4_sweep)
    with capsys.disabled():
        print()
        print(
            ascii_chart(
                {k: [(t, v) for t, v in pts] for k, pts in curves.items()},
                title=f"Fig 4a: TLR Cholesky time-to-solution, "
                f"N={fig4_sweep['matrix']}, 16 nodes",
                x_label="tile size",
                y_label="seconds",
            )
        )
        res = fig4_sweep["results"]
        rows = []
        for t in fig4_sweep["tiles"]:
            mpi = res[("mpi", t, False)].time_to_solution
            lci = res[("lci", t, False)].time_to_solution
            rows.append(
                (t, f"{mpi:.3f}", f"{lci:.3f}", f"{(mpi - lci) / mpi:+.1%}")
            )
        print(ascii_table(["tile", "MPI TTS (s)", "LCI TTS (s)", "LCI gain"], rows))
    check_lci_wins_everywhere(fig4_sweep)
    check_u_shape(fig4_sweep)
    check_lci_best_tile_not_larger(fig4_sweep)
    check_improvement_shrinks_with_tile_size(fig4_sweep)


def test_lci_lower_tts_at_every_tile(fig4_sweep):
    check_lci_wins_everywhere(fig4_sweep)


def test_u_shaped_curves(fig4_sweep):
    check_u_shape(fig4_sweep)


def test_lci_optimum_at_smaller_or_equal_tile(fig4_sweep):
    check_lci_best_tile_not_larger(fig4_sweep)


def test_gain_diminishes_with_tile_size(fig4_sweep):
    check_improvement_shrinks_with_tile_size(fig4_sweep)
