"""Ablation A1: the MPI backend's 30-concurrent-transfer cap (§4.2.2).

The paper argues the cap "may reduce aggregate bandwidth, but also reduces
the average completion time of individual communications", an acceptable
trade-off when scaling.  We sweep the cap and check:

- a tiny cap (serializing transfers) hurts time-to-solution;
- an unbounded cap changes individual-transfer completion behaviour: with
  the default cap, mean per-message latency stays at or below the
  unbounded configuration's (completion-time protection), while aggregate
  TTS is within a modest factor.
"""

import dataclasses

import pytest

from repro.analysis.ascii_plot import ascii_table
from repro.bench.hicma_bench import HicmaConfig
from repro.config import scaled_platform
from repro.hicma.dag import build_tlr_cholesky_graph
from repro.hicma.ranks import RankModel
from repro.hicma.timing import KernelTimeModel
from repro.runtime.context import ParsecContext


#: Cap sweep.  (Caps of ~1-2 can genuinely deadlock the emulated-put design
#: when both peers fill their arrays with receives whose counterpart sends
#: are deferred — an interesting structural property, but not this test.)
CAPS = [6, 30, 10_000]


@pytest.fixture(scope="module")
def results():
    out = {}
    for cap in CAPS:
        base = scaled_platform(num_nodes=8, cores_per_node=8)
        platform = dataclasses.replace(
            base, runtime=dataclasses.replace(base.runtime, mpi_max_transfers=cap)
        )
        cfg = HicmaConfig(matrix_size=36_000, tile_size=900, num_nodes=8)
        graph = build_tlr_cholesky_graph(
            cfg.nt,
            cfg.tile_size,
            num_nodes=cfg.num_nodes,
            rank_model=RankModel(cfg.nt, cfg.tile_size, cfg.maxrank),
            time_model=KernelTimeModel(platform.compute),
        )
        ctx = ParsecContext(platform, backend="mpi")
        out[cap] = ctx.run(graph, until=3600.0)
    return out


def check_tiny_cap_hurts(results):
    assert results[6].makespan > results[30].makespan * 1.02


def check_default_protects_completion_time(results):
    """With the cap, individual messages complete no slower on average."""
    assert results[30].mean_msg_latency <= results[10_000].mean_msg_latency * 1.10


def check_default_within_reasonable_tts(results):
    assert results[30].makespan <= results[10_000].makespan * 1.25


def test_ablation_transfer_cap(results, benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        rows = [
            (cap, f"{r.makespan:.3f}", f"{r.mean_msg_latency * 1e3:.3f}",
             f"{r.mean_flow_latency * 1e3:.3f}")
            for cap, r in results.items()
        ]
        print()
        print(
            ascii_table(
                ["max transfers", "TTS (s)", "msg latency (ms)", "e2e latency (ms)"],
                rows,
                title="Ablation A1: MPI backend concurrent-transfer cap",
            )
        )
    check_tiny_cap_hurts(results)
    check_default_protects_completion_time(results)
    check_default_within_reasonable_tts(results)


def test_tiny_cap_hurts_tts(results):
    check_tiny_cap_hurts(results)


def test_cap_protects_individual_completion_times(results):
    check_default_protects_completion_time(results)


def test_cap_keeps_aggregate_tts_reasonable(results):
    check_default_within_reasonable_tts(results)
