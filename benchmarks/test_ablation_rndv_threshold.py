"""Ablation A6: the MPI eager→rendezvous threshold.

§4.2.1 relies on active messages falling "within the range where MPI
implementations will use an 'eager' communication protocol".  We sweep the
threshold to show that dropping AMs (and handshakes) out of the eager range
— forcing rendezvous round trips for control traffic — degrades latency,
while an absurdly large threshold buys little (bulk data dominates then).
"""

import dataclasses

import pytest

from repro.analysis.ascii_plot import ascii_table
from repro.bench.workloads import chain
from repro.config import scaled_platform
from repro.runtime.context import ParsecContext
from repro.units import KiB


#: Thresholds must keep active messages in the eager range (the backend's
#: contract, §4.2.1) — the smallest value still fits a one-activation AM
#: (320 B) and the put handshake, but forces the 8 KiB data flows through
#: the rendezvous protocol.
THRESHOLDS = [512, 16 * KiB, 1024 * KiB]


@pytest.fixture(scope="module")
def results():
    out = {}
    for thresh in THRESHOLDS:
        base = scaled_platform(num_nodes=2, cores_per_node=4)
        platform = dataclasses.replace(
            base, mpi=dataclasses.replace(base.mpi, rendezvous_threshold=thresh)
        )
        ctx = ParsecContext(platform, backend="mpi")
        g = chain(60, num_nodes=2, flow_bytes=8 * KiB, duration=2e-6)
        out[thresh] = ctx.run(g, until=30.0)
    return out


def check_tiny_threshold_hurts_latency(results):
    """Data flows forced through rendezvous add an RTS/CTS round trip."""
    assert (
        results[512].mean_flow_latency
        > results[16 * KiB].mean_flow_latency * 1.05
    )


def check_huge_threshold_no_miracle(results):
    """Raising the threshold beyond the flow size changes nothing more
    (8 KiB flows are already eager at 16 KiB)."""
    ratio = results[1024 * KiB].mean_flow_latency / results[16 * KiB].mean_flow_latency
    assert 0.9 <= ratio <= 1.1


def test_ablation_rndv_threshold(results, benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        rows = [
            (f"{t} B", f"{r.makespan * 1e3:.3f}", f"{r.mean_flow_latency * 1e6:.1f}")
            for t, r in results.items()
        ]
        print()
        print(
            ascii_table(
                ["rendezvous threshold", "makespan (ms)", "e2e latency (us)"],
                rows,
                title="Ablation A6: MPI eager/rendezvous threshold "
                "(latency chain, 32 KiB flows)",
            )
        )
    check_tiny_threshold_hurts_latency(results)
    check_huge_threshold_no_miracle(results)


def test_tiny_threshold_hurts(results):
    check_tiny_threshold_hurts_latency(results)


def test_huge_threshold_bounded_gain(results):
    check_huge_threshold_no_miracle(results)
