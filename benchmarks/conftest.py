"""Shared fixtures for the figure-reproduction benchmarks.

Each ``test_fig*`` module regenerates one table or figure of the paper.
Sweeps that feed several figures (e.g. the Fig. 4 tile scan feeds 4a, 4b
and the §6.4.3 analysis; the Fig. 5 node scan feeds 5a, 5b and Table 2)
run once per session through :mod:`repro.sweep` — set ``REPRO_SWEEP_JOBS``
to fan the points over worker processes and ``REPRO_SWEEP_CACHE_DIR`` to
reuse results across sessions (results are bit-identical either way; the
cache key covers the full resolved configuration and the code version).

Set ``REPRO_PAPER_SCALE=1`` for the paper's full problem dimensions.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.sweep_tables import index_hicma_results
from repro.config import SweepConfig
from repro.sweep import fig4_grid, fig5_grid, run_sweep
from repro.sweep.spec import _fig4_dimensions, _fig5_dimensions


def _sweep_config() -> SweepConfig:
    """Sweep execution knobs from the environment (serial, no cache, by
    default so plain ``pytest`` runs stay hermetic)."""
    return SweepConfig(
        jobs=int(os.environ.get("REPRO_SWEEP_JOBS", "1")),
        cache_enabled=bool(os.environ.get("REPRO_SWEEP_CACHE_DIR")),
        cache_dir=os.environ.get("REPRO_SWEEP_CACHE_DIR"),
    )


@pytest.fixture(scope="session")
def fig4_sweep():
    """Tile-size scan at 16 nodes (Fig. 4a/4b): {(backend, tile, mt): result}."""
    matrix, tiles, mt_tiles = _fig4_dimensions()
    outcome = run_sweep(fig4_grid(), _sweep_config())
    results = index_hicma_results(outcome, by_nodes=False)
    return {"matrix": matrix, "tiles": tiles, "mt_tiles": mt_tiles, "results": results}


@pytest.fixture(scope="session")
def fig5_sweep():
    """Node scan with per-node tile lists (Fig. 5a/5b, Table 2)."""
    matrix, node_tiles = _fig5_dimensions()
    outcome = run_sweep(fig5_grid(), _sweep_config())
    results = index_hicma_results(outcome, by_nodes=True)
    return {"matrix": matrix, "node_tiles": node_tiles, "results": results}


def best_tile(sweep, backend: str, nodes: int) -> int:
    """Argmin tile size by time-to-solution from a fig5 sweep."""
    tiles = sweep["node_tiles"][nodes]
    results = sweep["results"]
    return min(tiles, key=lambda t: results[(backend, nodes, t)].time_to_solution)
