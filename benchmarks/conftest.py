"""Shared fixtures for the figure-reproduction benchmarks.

Each ``test_fig*`` module regenerates one table or figure of the paper.
Sweeps that feed several figures (e.g. the Fig. 4 tile scan feeds 4a, 4b
and the §6.4.3 analysis; the Fig. 5 node scan feeds 5a, 5b and Table 2)
run once per session and are cached here.

Set ``REPRO_PAPER_SCALE=1`` for the paper's full problem dimensions.
"""

from __future__ import annotations

import pytest

from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark


def _fig4_dimensions():
    from repro.config import paper_scale_enabled

    if paper_scale_enabled():
        matrix = 360_000
        tiles = [1200, 1500, 1800, 2400, 3000, 3600, 4500, 4800, 6000]
        mt_tiles = [1200, 2400]
    else:
        matrix = 72_000
        tiles = [450, 600, 720, 1200, 1800, 3000]
        mt_tiles = [600, 1200]
    return matrix, tiles, mt_tiles


def _fig5_dimensions():
    from repro.config import paper_scale_enabled

    if paper_scale_enabled():
        matrix = 360_000
        node_tiles = {
            n: [1200, 1500, 1800, 2400, 3000, 3600, 4500, 6000]
            for n in (1, 2, 4, 8, 16, 32)
        }
    else:
        # N here is larger than the Fig. 4 default so that the 16-node point
        # still sits inside the paper's strong-scaling window (scaled nodes
        # carry full Expanse-node compute, so the compute:communication
        # ratio of N=72k at 16 nodes corresponds to far beyond the paper's
        # 32-node point — see EXPERIMENTS.md).
        matrix = 144_000
        node_tiles = {
            1: [2400, 3600, 6000],
            2: [2400, 3600, 6000],
            4: [1440, 2400, 3600],
            8: [1200, 1440, 2400, 3600],
            16: [900, 1200, 1440, 2400],
        }
    return matrix, node_tiles


@pytest.fixture(scope="session")
def fig4_sweep():
    """Tile-size scan at 16 nodes (Fig. 4a/4b): {(backend, tile, mt): result}."""
    matrix, tiles, mt_tiles = _fig4_dimensions()
    results = {}
    for backend in ("mpi", "lci"):
        for tile in tiles:
            cfg = HicmaConfig(matrix_size=matrix, tile_size=tile, num_nodes=16)
            results[(backend, tile, False)] = run_hicma_benchmark(backend, cfg)
        for tile in mt_tiles:
            cfg = HicmaConfig(
                matrix_size=matrix,
                tile_size=tile,
                num_nodes=16,
                multithreaded_activate=True,
            )
            results[(backend, tile, True)] = run_hicma_benchmark(backend, cfg)
    return {"matrix": matrix, "tiles": tiles, "mt_tiles": mt_tiles, "results": results}


@pytest.fixture(scope="session")
def fig5_sweep():
    """Node scan with per-node tile lists (Fig. 5a/5b, Table 2)."""
    matrix, node_tiles = _fig5_dimensions()
    results = {}
    for backend in ("mpi", "lci"):
        for nodes, tiles in node_tiles.items():
            for tile in tiles:
                cfg = HicmaConfig(
                    matrix_size=matrix, tile_size=tile, num_nodes=nodes
                )
                results[(backend, nodes, tile)] = run_hicma_benchmark(backend, cfg)
    return {"matrix": matrix, "node_tiles": node_tiles, "results": results}


def best_tile(sweep, backend: str, nodes: int) -> int:
    """Argmin tile size by time-to-solution from a fig5 sweep."""
    tiles = sweep["node_tiles"][nodes]
    results = sweep["results"]
    return min(tiles, key=lambda t: results[(backend, nodes, t)].time_to_solution)
